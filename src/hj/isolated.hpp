#pragma once
// HJlib's `isolated` construct (paper §3.2): weak isolation / mutual
// exclusion between potentially-parallel isolated blocks.
//
//   isolated(fn)                 — global: excludes every other isolated.
//   isolated(obj..., fn)         — object-based: excludes isolated blocks
//                                  whose participant sets intersect.
//
// Implementation: a striped spinlock table keyed by object address. Object
// variants take the global gate in shared mode plus their stripes in sorted
// order (deadlock-free); the no-object variant takes the gate exclusively.

#include <algorithm>
#include <array>
#include <cstdint>
#include <shared_mutex>

#include "check/hb.hpp"
#include "support/platform.hpp"
#include "support/spinlock.hpp"
#include "support/unique_function.hpp"

namespace hjdes::hj {

namespace detail {

inline constexpr std::size_t kIsolatedStripes = 1024;

struct IsolatedTable {
  std::shared_mutex gate;
  std::array<Spinlock, kIsolatedStripes> stripes;
  // hjcheck edge carriers (no-op classes without HJDES_CHECK): one per
  // stripe, plus one for exclusive (global) isolated sections. Shared gate
  // holders deliberately do not touch gate_hb — shared/shared pairs do not
  // exclude each other, so an edge there would be unsound the other way:
  // it would order genuinely concurrent sections. The exclusive path
  // acquires/releases every stripe clock instead.
  std::array<check::SyncClock, kIsolatedStripes> stripe_hb;
  check::SyncClock gate_hb;

  static IsolatedTable& instance();

  static std::size_t stripe_of(const void* obj) noexcept {
    auto p = reinterpret_cast<std::uintptr_t>(obj);
    // Fibonacci hash of the address, discarding low alignment bits.
    return static_cast<std::size_t>(((p >> 4) * 0x9e3779b97f4a7c15ULL) >>
                                    (64 - 10)) %
           kIsolatedStripes;
  }
};

void isolated_impl(const void* const* objs, std::size_t count, Thunk body);

}  // namespace detail

/// Global isolated: run `body` in mutual exclusion with all other isolated
/// instances.
void isolated(Thunk body);

/// Object-based isolated: run `body` in mutual exclusion with isolated
/// instances naming any of the same objects (conservatively, any object
/// hashing to the same stripe).
template <typename... Objs>
void isolated_on(Thunk body, const Objs*... objs) {
  const void* ptrs[] = {static_cast<const void*>(objs)...};
  detail::isolated_impl(ptrs, sizeof...(objs), std::move(body));
}

}  // namespace hjdes::hj
