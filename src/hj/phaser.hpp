#pragma once
// HJlib-style phasers — the point-to-point/barrier synchronization construct
// the paper lists among HJlib's deadlock-free primitives (§3.2). This is the
// pedagogic barrier subset: a fixed number of registered parties, each
// calling next() per phase (or signal() for SIG-mode producers).
//
// IMPORTANT — blocking semantics: tasks in this runtime run to completion,
// so a party blocked in next() pins its worker thread. It deliberately does
// NOT execute other tasks while waiting (unlike Future::wait): helping could
// nest another party of the same phaser under the blocked frame, which can
// never complete — the classic help-first barrier deadlock. Consequently a
// phaser requires `parties <= workers` with one task per party; HJlib proper
// lifts this restriction with suspendable continuations.

#include <atomic>
#include <cstdint>
#include <thread>

#include "check/hb.hpp"
#include "support/platform.hpp"
#include "support/spinlock.hpp"

namespace hjdes::hj {

/// Cyclic barrier over `parties` participants with cooperative waiting.
class Phaser {
 public:
  explicit Phaser(int parties) : parties_(parties) {
    HJDES_CHECK(parties >= 1, "Phaser needs at least one party");
  }

  Phaser(const Phaser&) = delete;
  Phaser& operator=(const Phaser&) = delete;

  /// Current phase number (starts at 0, increments when all parties arrive).
  std::uint64_t phase() const {
    return phase_.load(std::memory_order_acquire);
  }

  /// SIG mode: arrive at the current phase without waiting for it to
  /// complete. The caller must not signal the same phase twice.
  void signal() { arrive(); }

  /// SIG_WAIT mode: arrive and wait until every party has arrived, then
  /// proceed into the next phase.
  void next() {
    const std::uint64_t my_phase = arrive();
    await(my_phase);
  }

  /// WAIT-only mode: wait for the given phase to complete without arriving.
  /// Useful for observers; `target_phase` is typically the value phase()
  /// returned before the signalers ran.
  void await(std::uint64_t target_phase) {
    int spins = 0;
    while (phase_.load(std::memory_order_acquire) <= target_phase) {
      if (++spins > 32) {
        std::this_thread::yield();  // see the blocking-semantics note above
        spins = 0;
      } else {
        cpu_relax();
      }
    }
    // hjcheck: every arriver of the completed phase released into hb_.
    hb_.acquire();
  }

 private:
  /// Record one arrival; returns the phase arrived at. The last arriver
  /// resets the count and advances the phase.
  std::uint64_t arrive() {
    const std::uint64_t my_phase = phase_.load(std::memory_order_acquire);
    hb_.release();  // publish pre-arrival actions to awaiters of this phase
    const int arrived = arrived_.fetch_add(1, std::memory_order_acq_rel) + 1;
    HJDES_DCHECK(arrived <= parties_, "more arrivals than registered parties");
    if (arrived == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.store(my_phase + 1, std::memory_order_release);
    }
    return my_phase;
  }

  const int parties_;
  HJDES_CACHE_ALIGNED std::atomic<std::uint64_t> phase_{0};
  HJDES_CACHE_ALIGNED std::atomic<int> arrived_{0};
  // hjcheck arrive->await edge carrier (no-op class without HJDES_CHECK).
  check::SyncClock hb_;
};

}  // namespace hjdes::hj
