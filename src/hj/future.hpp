#pragma once
// HJlib-style futures layered on async/finish. `async_future(fn)` spawns fn
// and returns a handle whose get() blocks — productively: a worker waiting on
// an unresolved future executes other tasks, preserving the busy-leaves
// property (and hence deadlock freedom for acyclic future graphs).

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "check/hb.hpp"
#include "hj/runtime.hpp"
#include "support/platform.hpp"
#include "support/spinlock.hpp"

namespace hjdes::hj {

/// Shared state + handle for a value produced by an async task.
template <typename T>
class Future {
 public:
  /// True once the producing task has stored the value.
  bool ready() const { return state_->ready.load(std::memory_order_acquire); }

  /// Wait for and return a reference to the value. Callable from worker or
  /// external threads; worker threads help execute tasks while waiting.
  T& get() {
    wait();
    return *state_->value;
  }

  /// Block until ready() without consuming the value. Worker threads help
  /// execute other tasks while waiting (so the producing task can run even
  /// on a single-worker runtime); external threads yield.
  void wait() {
    int spins = 0;
    while (!ready()) {
      if (help_one()) {
        spins = 0;
        continue;
      }
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      } else {
        cpu_relax();
      }
    }
    // hjcheck: the producer released into hb before setting ready.
    state_->hb.acquire();
  }

 private:
  template <typename U, typename F>
  friend Future<U> async_future(F&& fn);

  struct State {
    std::atomic<bool> ready{false};
    std::optional<T> value;
    // hjcheck producer->waiter edge (no-op class without HJDES_CHECK).
    check::SyncClock hb;
  };

  explicit Future(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Spawn `fn` as an async task; the returned future resolves to its result.
/// The spawned task is governed by the current finish scope like any async.
template <typename T, typename F>
Future<T> async_future(F&& fn) {
  auto state = std::make_shared<typename Future<T>::State>();
  async([state, fn = std::forward<F>(fn)]() mutable {
    state->value.emplace(fn());
    state->hb.release();  // before the flag: waiters acquire after seeing it
    state->ready.store(true, std::memory_order_release);
  });
  return Future<T>(state);
}

}  // namespace hjdes::hj
