#pragma once
// Chase–Lev work-stealing deque (Chase & Lev 2005, with the C11 memory-order
// discipline of Lê/Pop/Cohen/Nardelli 2013). The owner pushes and pops at the
// bottom; thieves steal from the top with a CAS. This is the data structure
// behind HJlib's "task deques" (paper §4.3: "Upon the creation of a task, the
// task is pushed into a deque and waits for future execution").

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/platform.hpp"

namespace hjdes::hj {

/// Lock-free work-stealing deque of pointers. Single owner thread calls
/// push()/pop(); any number of thief threads call steal(). Grows unboundedly;
/// retired buffers are kept alive until destruction so racing thieves never
/// dereference freed memory.
template <typename T>
class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 256)
      : buffer_(new Buffer(round_up(initial_capacity))) {
    retired_.emplace_back(buffer_.load(std::memory_order_relaxed));
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  ~ChaseLevDeque() = default;

  /// Owner only: push one element at the bottom.
  void push(T* item) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > buf->capacity - 1) {
      buf = grow(buf, t, b);
    }
    buf->put(b, item);
    // Release store (not fence + relaxed): publishes the element AND the
    // spawner's plain writes to *item to any thief that acquire-loads
    // bottom_. ThreadSanitizer does not model atomic_thread_fence, so the
    // fence form of Lê et al. reports false races on the task contents.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: pop the most recently pushed element, nullptr when empty.
  T* pop() {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    T* item = nullptr;
    if (t <= b) {
      item = buf->get(b);
      if (t == b) {
        // Last element: race against thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = nullptr;  // a thief won
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread: steal the oldest element, nullptr when empty or on a lost
  /// race (callers treat both as "try elsewhere").
  T* steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    T* item = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return item;
  }

  /// Racy size estimate, for stats and idle heuristics only.
  std::int64_t size_estimate() const {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

 private:
  struct Buffer {
    explicit Buffer(std::int64_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T*>[cap]) {}
    T* get(std::int64_t i) const {
      return slots[i & mask].load(std::memory_order_relaxed);
    }
    void put(std::int64_t i, T* v) {
      slots[i & mask].store(v, std::memory_order_relaxed);
    }
    const std::int64_t capacity;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<T*>[]> slots;
  };

  static std::size_t round_up(std::size_t n) {
    std::size_t cap = 8;
    while (cap < n) cap <<= 1;
    return cap;
  }

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto fresh = std::make_unique<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) fresh->put(i, old->get(i));
    Buffer* raw = fresh.get();
    retired_.push_back(std::move(fresh));
    buffer_.store(raw, std::memory_order_release);
    return raw;
  }

  HJDES_CACHE_ALIGNED std::atomic<std::int64_t> top_{0};
  HJDES_CACHE_ALIGNED std::atomic<std::int64_t> bottom_{0};
  HJDES_CACHE_ALIGNED std::atomic<Buffer*> buffer_;
  // Owner-only; old buffers stay alive for the deque's lifetime so thieves
  // holding stale buffer pointers remain safe (grow is rare and bounded).
  std::vector<std::unique_ptr<Buffer>> retired_;
};

}  // namespace hjdes::hj
