#include "hj/runtime.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "check/hb.hpp"
#include "check/vector_clock.hpp"
#include "fault/heartbeat.hpp"
#include "fault/inject.hpp"
#include "hj/chase_lev_deque.hpp"
#include "hj/locks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"
#include "support/spinlock.hpp"

namespace hjdes::hj {
namespace {

/// One dynamic finish scope. Lives on the stack of the task that executes the
/// finish statement; `pending` counts direct and transitively re-registered
/// children that have not yet completed.
struct FinishScope {
  std::atomic<std::int64_t> pending{0};
  // hjcheck join edge: every completing child releases into this clock
  // before decrementing `pending`; the finish() loop acquires from it after
  // observing zero. No-op empty class without HJDES_CHECK.
  check::SyncClock hb_join;
};

}  // namespace

/// Heap task record. Recycled through a per-worker freelist because the DES
/// engines spawn one task per node activation (10^5..10^7 per run).
struct Task {
  Thunk fn;
  FinishScope* ief = nullptr;
  Task* pool_next = nullptr;
  // hjcheck spawn edge: the parent's frontier at async() time, adopted by
  // whichever worker runs the task. Null without HJDES_CHECK.
  check::VectorClock* hb_birth = nullptr;
};

namespace {

struct WakeGate {
  std::mutex mu;
  std::condition_variable cv;
};

thread_local Worker* tls_worker = nullptr;
thread_local FinishScope* tls_finish = nullptr;
thread_local Runtime* tls_runtime = nullptr;

}  // namespace

/// Per-worker state: deque, PRNG for victim selection, task freelist, stats.
///
/// The stat_* fields are this worker's metric shards: written only by the
/// owning thread, summed by Runtime::stats(). They are relaxed atomics (not
/// plain integers) because stats() and the run() epilogue read them while
/// idle workers may still be bumping stat_failed_rounds in their scan loop.
class Worker {
 public:
  Worker(Runtime* rt, int index)
      : runtime(rt), index(index), rng(0x9e3779b9u + index * 0x85ebca6bu) {}

  ~Worker() {
    while (free_list != nullptr) {
      Task* next = free_list->pool_next;
      delete free_list;
      free_list = next;
    }
  }

  Task* allocate() {
    stat_spawned.fetch_add(1, std::memory_order_relaxed);
    if (free_list != nullptr) {
      Task* t = free_list;
      free_list = t->pool_next;
      return t;
    }
    return new Task();
  }

  void recycle(Task* t) {
    t->fn.reset();
    t->ief = nullptr;
    t->pool_next = free_list;
    free_list = t;
  }

  Runtime* const runtime;
  const int index;
  ChaseLevDeque<Task> deque;
  Xoshiro256 rng;
  Task* free_list = nullptr;
  std::atomic<std::uint64_t> stat_executed{0};
  std::atomic<std::uint64_t> stat_spawned{0};
  std::atomic<std::uint64_t> stat_steals{0};
  std::atomic<std::uint64_t> stat_failed_rounds{0};
  WakeGate gate;
};

namespace {

/// Execute one task with its IEF installed, then signal completion.
void execute_task(Worker* w, Task* t) {
  FinishScope* prev = tls_finish;
  tls_finish = t->ief;
  check::adopt_birth(t->hb_birth);  // parent async() -> first task action
  t->hb_birth = nullptr;
  // Injected preemption: surrender the core right before the task body, the
  // worst point for the §4.5.3 Dekker-style activity checks. Correct engines
  // must tolerate a worker stalling here.
  if (fault::should_inject(fault::Site::kWorkerYield)) {
    std::this_thread::yield();
  }
  {
    obs::ScopedSpan span(obs::SpanKind::kTask);
    t->fn();
  }
  detail::on_task_exit_locks();  // RELEASEALLLOCKS contract (leak = abort/report)
  fault::heartbeat();  // a completed task is forward progress
  tls_finish = prev;
  // Publish this task's frontier before the decrement that may end the join.
  t->ief->hb_join.release();
  t->ief->pending.fetch_sub(1, std::memory_order_acq_rel);
  w->stat_executed.fetch_add(1, std::memory_order_relaxed);
  w->recycle(t);
}

/// Try to obtain a task: own deque first, then random victims, then a sweep
/// over every worker. Returns nullptr when nothing was found this round.
Task* find_task(Runtime* rt, Worker* w,
                std::vector<std::unique_ptr<Worker>>& workers) {
  if (Task* t = w->deque.pop()) return t;
  const int n = static_cast<int>(workers.size());
  if (n == 1) return nullptr;
  for (int attempt = 0; attempt < 2 * n; ++attempt) {
    int victim = static_cast<int>(w->rng.below(static_cast<std::uint64_t>(n)));
    if (victim == w->index) continue;
    if (Task* t = workers[static_cast<std::size_t>(victim)]->deque.steal()) {
      w->stat_steals.fetch_add(1, std::memory_order_relaxed);
      obs::instant(obs::SpanKind::kSteal);
      return t;
    }
  }
  for (int victim = 0; victim < n; ++victim) {
    if (victim == w->index) continue;
    if (Task* t = workers[static_cast<std::size_t>(victim)]->deque.steal()) {
      w->stat_steals.fetch_add(1, std::memory_order_relaxed);
      obs::instant(obs::SpanKind::kSteal);
      return t;
    }
  }
  w->stat_failed_rounds.fetch_add(1, std::memory_order_relaxed);
  (void)rt;
  return nullptr;
}

}  // namespace

Runtime::Runtime(RuntimeConfig config)
    : pin_plan_(support::pinning_plan(support::machine_topology(),
                                      config.workers, config.pin)),
      spin_before_park_(config.spin_before_park) {
  HJDES_CHECK(config.workers >= 1, "Runtime requires at least one worker");
  workers_.reserve(static_cast<std::size_t>(config.workers));
  for (int i = 0; i < config.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(this, i));
  }
  threads_.reserve(static_cast<std::size_t>(config.workers - 1));
  for (int i = 1; i < config.workers; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

Runtime::~Runtime() {
  shutdown_.store(true, std::memory_order_seq_cst);
  wake_all();
  for (auto& t : threads_) t.join();
}

Runtime* Runtime::current() { return tls_runtime; }

RuntimeStats Runtime::stats() const {
  RuntimeStats s;
  for (const auto& w : workers_) {
    s.tasks_executed += w->stat_executed.load(std::memory_order_relaxed);
    s.tasks_spawned += w->stat_spawned.load(std::memory_order_relaxed);
    s.steals += w->stat_steals.load(std::memory_order_relaxed);
    s.failed_steal_rounds +=
        w->stat_failed_rounds.load(std::memory_order_relaxed);
  }
  return s;
}

void Runtime::publish_metrics() {
  // Mirror per-worker scheduler counters into the global registry as deltas
  // since the last publication (counters are process-lifetime monotonic;
  // RuntimeStats stays per-instance).
  static obs::Counter& c_executed =
      obs::metrics().counter("hj.runtime.tasks_executed");
  static obs::Counter& c_spawned =
      obs::metrics().counter("hj.runtime.tasks_spawned");
  static obs::Counter& c_steals = obs::metrics().counter("hj.runtime.steals");
  static obs::Counter& c_failed =
      obs::metrics().counter("hj.runtime.failed_steal_rounds");
  const RuntimeStats now = stats();
  c_executed.add(now.tasks_executed - published_.tasks_executed);
  c_spawned.add(now.tasks_spawned - published_.tasks_spawned);
  c_steals.add(now.steals - published_.steals);
  c_failed.add(now.failed_steal_rounds - published_.failed_steal_rounds);
  published_ = now;
}

void Runtime::wake_all() {
  // Bump the epoch before notifying: a worker that re-scanned and saw empty
  // deques recorded the pre-bump epoch, so its wait predicate fails and it
  // re-scans instead of sleeping through this wakeup.
  wake_epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (idle_workers_.load(std::memory_order_seq_cst) > 0) {
    for (auto& w : workers_) {
      std::scoped_lock guard(w->gate.mu);
      w->gate.cv.notify_all();
    }
  }
}

void Runtime::run(Thunk root) {
  HJDES_CHECK(tls_worker == nullptr, "nested Runtime::run is not allowed");
  HJDES_CHECK(!running_.exchange(true, std::memory_order_acq_rel),
              "Runtime::run is not reentrant");
  Worker* self = workers_[0].get();
  tls_worker = self;
  tls_runtime = this;
  fault::sched::bind_thread(0);  // caller acts as worker 0
  // The caller is worker 0: pin it only for the duration of this run and
  // restore its original affinity afterwards (ScopedAffinity dtor).
  support::ScopedAffinity pin_guard;
  if (!pin_plan_.empty()) pin_guard.pin(pin_plan_[0]);
  finish(std::move(root));
  publish_metrics();
  tls_worker = nullptr;
  tls_runtime = nullptr;
  running_.store(false, std::memory_order_release);
}

void Runtime::worker_main(int index) {
  Worker* self = workers_[static_cast<std::size_t>(index)].get();
  tls_worker = self;
  tls_runtime = this;
  fault::sched::bind_thread(index);
  if (!pin_plan_.empty()) {
    support::pin_current_thread(pin_plan_[static_cast<std::size_t>(index)]);
  }
  while (!shutdown_.load(std::memory_order_acquire)) {
    Task* t = find_task(this, self, workers_);
    if (t != nullptr) {
      execute_task(self, t);
      continue;
    }
    // Idle path: spin briefly, then park until the wake epoch changes.
    int spins = 0;
    std::uint64_t epoch = wake_epoch_.load(std::memory_order_seq_cst);
    bool got_work = false;
    while (spins++ < spin_before_park_) {
      if ((t = find_task(this, self, workers_)) != nullptr) {
        got_work = true;
        break;
      }
      if (spins % 16 == 0) std::this_thread::yield();
      cpu_relax();
    }
    if (got_work) {
      execute_task(self, t);
      continue;
    }
    idle_workers_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock guard(self->gate.mu);
      self->gate.cv.wait_for(guard, std::chrono::milliseconds(1), [&] {
        return shutdown_.load(std::memory_order_acquire) ||
               wake_epoch_.load(std::memory_order_seq_cst) != epoch;
      });
    }
    idle_workers_.fetch_sub(1, std::memory_order_seq_cst);
  }
  tls_worker = nullptr;
  tls_runtime = nullptr;
}

void async(Thunk fn) {
  Worker* w = tls_worker;
  HJDES_CHECK(w != nullptr, "async() outside of a Runtime::run worker");
  FinishScope* scope = tls_finish;
  HJDES_CHECK(scope != nullptr, "async() with no enclosing finish");
  scope->pending.fetch_add(1, std::memory_order_acq_rel);
  Task* t = w->allocate();
  t->fn = std::move(fn);
  t->ief = scope;
  t->hb_birth = check::snapshot_birth();  // parent frontier -> child
  w->deque.push(t);
  w->runtime->wake_all();
}

void finish(Thunk body) {
  Worker* w = tls_worker;
  HJDES_CHECK(w != nullptr, "finish() outside of a Runtime::run worker");
  Runtime* rt = w->runtime;
  FinishScope scope;
  FinishScope* prev = tls_finish;
  tls_finish = &scope;
  body();
  tls_finish = prev;
  // Help-first join: execute available tasks until every transitive child
  // of this scope has completed. Tasks from unrelated scopes may run here;
  // that only accelerates their finishes.
  int idle_spins = 0;
  while (scope.pending.load(std::memory_order_acquire) != 0) {
    Task* t = find_task(rt, w, rt->workers_);
    if (t != nullptr) {
      // execute_task needs tls_finish to be irrelevant: it installs t->ief.
      execute_task(w, t);
      idle_spins = 0;
    } else if (++idle_spins < 128) {
      cpu_relax();
    } else {
      std::this_thread::yield();
      idle_spins = 0;
    }
  }
  // All children released into hb_join before their final decrement; adopt
  // their frontiers so post-finish code is ordered after every child.
  scope.hb_join.acquire();
}

bool help_one() {
  Worker* w = tls_worker;
  if (w == nullptr) return false;
  Task* t = find_task(w->runtime, w, w->runtime->workers_);
  if (t == nullptr) return false;
  execute_task(w, t);
  return true;
}

bool in_worker() { return tls_worker != nullptr; }

int current_worker_id() {
  return tls_worker == nullptr ? -1 : tls_worker->index;
}

}  // namespace hjdes::hj
