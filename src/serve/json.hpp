#pragma once
// Minimal JSON value + recursive-descent parser for the serve layer's job
// specs (docs/SERVING.md). The repo writes JSON in several places (metrics,
// bench trajectories) but until the serve subsystem nothing had to *read*
// it; this parser covers exactly the JSON grammar (RFC 8259) minus \u
// surrogate pairs (escapes decode to code points <= 0xFFFF, which is all a
// job spec ever needs), and reports errors as messages with byte offsets
// instead of aborting — a malformed job line must reject that one job, not
// take down the daemon.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hjdes::serve {

/// One parsed JSON value. Objects keep their keys sorted (std::map): job
/// specs are small and validation iterates keys to reject unknown ones, so
/// deterministic order beats insertion order.
class Json {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Json() = default;

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool() const noexcept { return bool_; }
  double as_number() const noexcept { return number_; }
  const std::string& as_string() const noexcept { return string_; }
  const std::vector<Json>& as_array() const noexcept { return array_; }
  const std::map<std::string, Json>& as_object() const noexcept {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  static Json make_null() { return Json(); }
  static Json make_bool(bool v);
  static Json make_number(double v);
  static Json make_string(std::string v);
  static Json make_array(std::vector<Json> v);
  static Json make_object(std::map<std::string, Json> v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

/// Parse `text` (one complete JSON value, surrounding whitespace ok) into
/// `*out`. On failure returns false and writes a one-line description with
/// the byte offset into `*error` (when non-null); `*out` is unspecified.
bool parse_json(std::string_view text, Json* out, std::string* error);

/// Escape `s` for embedding in a JSON string literal (no surrounding
/// quotes). The serve result writer uses it for job ids and reject reasons,
/// which echo user-controlled spec text.
std::string json_escape(std::string_view s);

}  // namespace hjdes::serve
