#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace hjdes::serve {

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

Json Json::make_bool(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json Json::make_number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

Json Json::make_string(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::make_array(std::vector<Json> v) {
  Json j;
  j.kind_ = Kind::kArray;
  j.array_ = std::move(v);
  return j;
}

Json Json::make_object(std::map<std::string, Json> v) {
  Json j;
  j.kind_ = Kind::kObject;
  j.object_ = std::move(v);
  return j;
}

namespace {

/// Recursive-descent parser over a string_view with explicit error state.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(Json* out, std::string* error) {
    skip_ws();
    if (!value(out)) {
      if (error != nullptr) *error = error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after the JSON value");
      if (error != nullptr) *error = error_;
      return false;
    }
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word, Json v, Json* out) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("unexpected token");
    }
    pos_ += word.size();
    *out = std::move(v);
    return true;
  }

  // Depth guard: job specs are a couple of levels deep; a hostile line must
  // not be able to overflow the daemon's stack.
  static constexpr int kMaxDepth = 64;

  bool value(Json* out) {
    if (depth_ >= kMaxDepth) return fail("nesting deeper than 64 levels");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        return literal("null", Json::make_null(), out);
      case 't':
        return literal("true", Json::make_bool(true), out);
      case 'f':
        return literal("false", Json::make_bool(false), out);
      case '"':
        return string_value(out);
      case '[':
        return array_value(out);
      case '{':
        return object_value(out);
      default:
        return number_value(out);
    }
  }

  bool string_value(Json* out) {
    std::string s;
    if (!string_raw(&s)) return false;
    *out = Json::make_string(std::move(s));
    return true;
  }

  bool string_raw(std::string* out) {
    if (!eat('"')) return fail("expected '\"'");
    std::string s;
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        s.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': s.push_back('"'); break;
        case '\\': s.push_back('\\'); break;
        case '/': s.push_back('/'); break;
        case 'b': s.push_back('\b'); break;
        case 'f': s.push_back('\f'); break;
        case 'n': s.push_back('\n'); break;
        case 'r': s.push_back('\r'); break;
        case 't': s.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // Encode the code point as UTF-8 (no surrogate-pair joining).
          if (cp < 0x80) {
            s.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape character");
      }
    }
    *out = std::move(s);
    return true;
  }

  bool number_value(Json* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // RFC 8259: no leading zeros ("01" is two tokens, i.e. malformed).
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) != 0) {
      return fail("number with a leading zero");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("unexpected token");
    double v = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    auto [ptr, ec] = std::from_chars(first, last, v);
    if (ec != std::errc{} || ptr != last) {
      pos_ = start;
      return fail("malformed number");
    }
    *out = Json::make_number(v);
    return true;
  }

  bool array_value(Json* out) {
    eat('[');
    ++depth_;
    std::vector<Json> items;
    skip_ws();
    if (eat(']')) {
      --depth_;
      *out = Json::make_array(std::move(items));
      return true;
    }
    while (true) {
      Json item;
      skip_ws();
      if (!value(&item)) return false;
      items.push_back(std::move(item));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) break;
      return fail("expected ',' or ']' in array");
    }
    --depth_;
    *out = Json::make_array(std::move(items));
    return true;
  }

  bool object_value(Json* out) {
    eat('{');
    ++depth_;
    std::map<std::string, Json> members;
    skip_ws();
    if (eat('}')) {
      --depth_;
      *out = Json::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string_raw(&key)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':' after object key");
      Json member;
      skip_ws();
      if (!value(&member)) return false;
      if (!members.emplace(std::move(key), std::move(member)).second) {
        return fail("duplicate object key");
      }
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) break;
      return fail("expected ',' or '}' in object");
    }
    --depth_;
    *out = Json::make_object(std::move(members));
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

bool parse_json(std::string_view text, Json* out, std::string* error) {
  return Parser(text).parse(out, error);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace hjdes::serve
