#include "serve/aggregate.hpp"

#include <cmath>
#include <cstdio>

#include "serve/json.hpp"

namespace hjdes::serve {

std::string_view job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kDegraded: return "degraded";
    case JobStatus::kRejected: return "rejected";
  }
  return "unknown";
}

std::uint64_t result_checksum(const des::SimResult& result) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(result.waveforms.size());
  for (const auto& wave : result.waveforms) {
    mix(wave.size());
    for (const des::OutputRecord& rec : wave) {
      mix(static_cast<std::uint64_t>(rec.time));
      mix(rec.value);
    }
  }
  mix(result.events_processed);
  return h;
}

namespace {

void append_stats_object(std::string* out, const char* key,
                         const RunningStats& s) {
  const std::size_t n = s.count();
  const double stddev = std::sqrt(s.variance());
  const double ci = ci95_half_student_t(stddev, n);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "\"%s\":{\"count\":%zu,\"min\":%.6g,\"max\":%.6g,"
                "\"mean\":%.6g,\"stddev\":%.6g,\"ci95\":%.6g}",
                key, n, s.min(), s.max(), s.mean(), stddev, ci);
  *out += buf;
}

}  // namespace

std::string job_result_json(const JobResult& result) {
  std::string out = "{\"job\":\"" + json_escape(result.id) + "\",\"status\":\"";
  out += job_status_name(result.status);
  out += '"';
  if (!result.reason.empty()) {
    out += ",\"reason\":\"" + json_escape(result.reason) + "\"";
  }
  char buf[256];
  std::snprintf(buf, sizeof buf,
                ",\"trials\":%zu,\"completed\":%zu,\"failed\":%zu,"
                "\"packed_trials\":%zu,\"elapsed_ms\":%.3f,"
                "\"total_events\":%llu",
                result.trials, result.completed, result.failed,
                result.packed_trials, result.elapsed_ms,
                static_cast<unsigned long long>(result.total_events));
  out += buf;
  if (result.completed > 0) {
    out += ',';
    append_stats_object(&out, "events", result.events_stats);
    out += ',';
    append_stats_object(&out, "ms", result.ms_stats);
  }
  out += '}';
  return out;
}

}  // namespace hjdes::serve
