#include "serve/job_spec.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "circuit/generators.hpp"
#include "circuit/netlist_io.hpp"

namespace hjdes::serve {

namespace {

/// Read a JSON number that must be an integer within [lo, hi].
bool int_field(const Json& obj, const char* key, std::int64_t lo,
               std::int64_t hi, std::int64_t* out, std::string* error) {
  const Json* v = obj.find(key);
  if (v == nullptr) return true;  // optional, default stands
  if (!v->is_number() || v->as_number() != std::floor(v->as_number())) {
    *error = std::string("field '") + key + "' must be an integer";
    return false;
  }
  const double d = v->as_number();
  if (d < static_cast<double>(lo) || d > static_cast<double>(hi)) {
    *error = std::string("field '") + key + "' out of range [" +
             std::to_string(lo) + ", " + std::to_string(hi) + "]";
    return false;
  }
  *out = static_cast<std::int64_t>(d);
  return true;
}

bool string_field(const Json& obj, const char* key, std::string* out,
                  std::string* error) {
  const Json* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_string()) {
    *error = std::string("field '") + key + "' must be a string";
    return false;
  }
  *out = v->as_string();
  return true;
}

bool bool_field(const Json& obj, const char* key, bool* out,
                std::string* error) {
  const Json* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_bool()) {
    *error = std::string("field '") + key + "' must be a boolean";
    return false;
  }
  *out = v->as_bool();
  return true;
}

template <typename T>
bool int_array_field(const Json& obj, const char* key, std::int64_t lo,
                     std::int64_t hi, std::vector<T>* out,
                     std::string* error) {
  const Json* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_array()) {
    *error = std::string("field '") + key + "' must be an array of integers";
    return false;
  }
  out->clear();
  for (const Json& item : v->as_array()) {
    if (!item.is_number() ||
        item.as_number() != std::floor(item.as_number()) ||
        item.as_number() < static_cast<double>(lo) ||
        item.as_number() > static_cast<double>(hi)) {
      *error = std::string("field '") + key +
               "' entries must be integers in [" + std::to_string(lo) + ", " +
               std::to_string(hi) + "]";
      return false;
    }
    out->push_back(static_cast<T>(item.as_number()));
  }
  if (out->empty()) {
    *error = std::string("field '") + key + "' must not be an empty array";
    return false;
  }
  return true;
}

bool string_array_field(const Json& obj, const char* key,
                        std::vector<std::string>* out, std::string* error) {
  const Json* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_array()) {
    *error = std::string("field '") + key + "' must be an array of strings";
    return false;
  }
  out->clear();
  for (const Json& item : v->as_array()) {
    if (!item.is_string()) {
      *error = std::string("field '") + key + "' entries must be strings";
      return false;
    }
    out->push_back(item.as_string());
  }
  if (out->empty()) {
    *error = std::string("field '") + key + "' must not be an empty array";
    return false;
  }
  return true;
}

/// Keys a job spec may carry; anything else is a reject (typo safety: a
/// misspelled "replications" silently running 1 trial would be worse).
constexpr const char* kKnownKeys[] = {
    "id",          "circuit",         "engine",  "workers",
    "replications", "seed",           "vectors", "interval",
    "sweep_vectors", "sweep_intervals", "deadline_ms", "pack",
    "model",       "model_params",    "sweep_params",
};

}  // namespace

std::size_t JobSpec::trial_count() const {
  if (model != "circuit") {
    const std::size_t np = sweep_params.empty() ? 1 : sweep_params.size();
    return static_cast<std::size_t>(replications) * np;
  }
  const std::size_t nv = sweep_vectors.empty() ? 1 : sweep_vectors.size();
  const std::size_t ni = sweep_intervals.empty() ? 1 : sweep_intervals.size();
  return static_cast<std::size_t>(replications) * nv * ni;
}

bool parse_job_spec(const Json& json, JobSpec* out, std::string* error) {
  *out = JobSpec{};
  if (!json.is_object()) {
    *error = "job spec must be a JSON object";
    return false;
  }
  // Fill the id first so even a reject can be attributed.
  if (!string_field(json, "id", &out->id, error)) return false;

  for (const auto& [key, value] : json.as_object()) {
    (void)value;
    bool known = false;
    for (const char* k : kKnownKeys) known = known || key == k;
    if (!known) {
      *error = "unknown field '" + key + "'";
      return false;
    }
  }

  if (!string_field(json, "circuit", &out->circuit, error)) return false;
  if (!string_field(json, "model", &out->model, error)) return false;
  if (!string_field(json, "model_params", &out->model_params, error)) {
    return false;
  }
  if (!string_array_field(json, "sweep_params", &out->sweep_params, error)) {
    return false;
  }
  if (out->model == "circuit") {
    if (out->circuit.empty()) {
      *error = "field 'circuit' is required";
      return false;
    }
    if (!out->model_params.empty() || !out->sweep_params.empty()) {
      *error = "fields 'model_params'/'sweep_params' require a non-circuit "
               "'model'";
      return false;
    }
  } else {
    // Non-circuit jobs take model parameters, not circuit stimulus knobs —
    // a present-but-inert stimulus field would make the sweep a lie.
    for (const char* key : {"circuit", "vectors", "interval", "sweep_vectors",
                            "sweep_intervals"}) {
      if (json.find(key) != nullptr) {
        *error = std::string("field '") + key +
                 "' applies to circuit jobs only (model '" + out->model +
                 "' takes 'model_params'/'sweep_params')";
        return false;
      }
    }
  }
  if (!string_field(json, "engine", &out->engine, error)) return false;

  std::int64_t workers = out->workers;
  std::int64_t replications = out->replications;
  std::int64_t seed = static_cast<std::int64_t>(out->seed);
  std::int64_t vectors = static_cast<std::int64_t>(out->vectors);
  std::int64_t interval = out->interval;
  std::int64_t deadline = out->deadline_ms;
  if (!int_field(json, "workers", 1, 256, &workers, error) ||
      !int_field(json, "replications", 1, 1 << 20, &replications, error) ||
      !int_field(json, "seed", 0, (std::int64_t{1} << 53) - 1, &seed,
                 error) ||
      !int_field(json, "vectors", 1, 1 << 20, &vectors, error) ||
      !int_field(json, "interval", 1, 1 << 30, &interval, error) ||
      !int_field(json, "deadline_ms", 0, 86'400'000, &deadline, error)) {
    return false;
  }
  out->workers = static_cast<int>(workers);
  out->replications = static_cast<int>(replications);
  out->seed = static_cast<std::uint64_t>(seed);
  out->vectors = static_cast<std::size_t>(vectors);
  out->interval = interval;
  out->deadline_ms = static_cast<int>(deadline);

  if (!int_array_field(json, "sweep_vectors", 1, 1 << 20, &out->sweep_vectors,
                       error) ||
      !int_array_field(json, "sweep_intervals", 1, 1 << 30,
                       &out->sweep_intervals, error)) {
    return false;
  }
  if (!bool_field(json, "pack", &out->pack, error)) return false;
  return true;
}

bool parse_job_spec_line(std::string_view line, JobSpec* out,
                         std::string* error) {
  Json json;
  if (!parse_json(line, &json, error)) return false;
  return parse_job_spec(json, out, error);
}

std::vector<TrialSpec> expand_trials(const JobSpec& spec) {
  if (spec.model != "circuit") {
    const std::vector<std::string> points =
        spec.sweep_params.empty() ? std::vector<std::string>{spec.model_params}
                                  : spec.sweep_params;
    std::vector<TrialSpec> trials;
    trials.reserve(spec.trial_count());
    std::size_t index = 0;
    for (const std::string& params : points) {
      for (int r = 0; r < spec.replications; ++r) {
        TrialSpec t;
        t.index = index;
        t.params = params;
        t.seed = spec.seed + index;
        trials.push_back(std::move(t));
        ++index;
      }
    }
    return trials;
  }
  const std::vector<std::size_t> vecs =
      spec.sweep_vectors.empty() ? std::vector<std::size_t>{spec.vectors}
                                 : spec.sweep_vectors;
  const std::vector<std::int64_t> ivals =
      spec.sweep_intervals.empty() ? std::vector<std::int64_t>{spec.interval}
                                   : spec.sweep_intervals;
  std::vector<TrialSpec> trials;
  trials.reserve(spec.trial_count());
  std::size_t index = 0;
  for (std::size_t v : vecs) {
    for (std::int64_t i : ivals) {
      for (int r = 0; r < spec.replications; ++r) {
        TrialSpec t;
        t.index = index;
        t.vectors = v;
        t.interval = i;
        // One seed per trial across the whole job, so sweep points never
        // reuse a replication's stimulus stream.
        t.seed = spec.seed + index;
        trials.push_back(t);
        ++index;
      }
    }
  }
  return trials;
}

bool load_job_circuit(const JobSpec& spec, circuit::Netlist* out,
                      std::string* error) {
  const std::string& s = spec.circuit;
  if (s.rfind("gen:", 0) == 0) {
    const std::string name = s.substr(4);
    auto bits_of = [&name](std::size_t prefix, int lo, int hi) {
      const int bits = std::atoi(name.c_str() + prefix);
      return bits >= lo && bits <= hi ? bits : -1;
    };
    if (name.rfind("ks", 0) == 0) {
      const int bits = bits_of(2, 1, 1024);
      if (bits < 0) {
        *error = "generator '" + name + "': ks<bits> needs bits in [1, 1024]";
        return false;
      }
      *out = circuit::kogge_stone_adder(bits);
      return true;
    }
    if (name.rfind("mul", 0) == 0) {
      const int bits = bits_of(3, 1, 64);
      if (bits < 0) {
        *error = "generator '" + name + "': mul<bits> needs bits in [1, 64]";
        return false;
      }
      *out = circuit::tree_multiplier(bits);
      return true;
    }
    if (name.rfind("ripple", 0) == 0) {
      const int bits = bits_of(6, 1, 4096);
      if (bits < 0) {
        *error =
            "generator '" + name + "': ripple<bits> needs bits in [1, 4096]";
        return false;
      }
      *out = circuit::ripple_carry_adder(bits);
      return true;
    }
    *error = "unknown generator '" + name +
             "' (ks<bits>, mul<bits>, ripple<bits>)";
    return false;
  }
  std::ifstream in(s);
  if (!in.good()) {
    *error = "cannot open circuit file '" + s + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  // parse_netlist aborts on malformed text; circuit files are operator
  // assets (the untrusted surface is the JSON spec), see docs/SERVING.md.
  *out = circuit::parse_netlist(buf.str());
  return true;
}

}  // namespace hjdes::serve
