#pragma once
// TrialScheduler: the experiment-throughput core of the serve layer
// (docs/SERVING.md). Accepted jobs expand into trials that are packed across
// a pool of long-lived workers:
//
//   * Workers are created once, pinned by the support/topology plan, and
//     each owns a persistent EventArena installed for the thread's lifetime
//     — trials land on warm, NUMA-local slabs with no per-trial cold start
//     (the PARSIR placement argument applied to trial traffic).
//   * Replication batches with identical stimulus timelines are routed
//     through the 64-lane bit-parallel core (des/packed_engine.hpp): one
//     worker retires up to 64 trials per packed pass. Sweep points and
//     engines without the packed capability fall back to scalar trials.
//   * Admission control bounds the job queue and per-job trial counts and
//     rejects with a reason string — untrusted traffic can be refused, never
//     crash the fleet.
//   * A monitor thread enforces per-job deadlines against the PR 5 heartbeat
//     board: a job past its deadline is degraded — pending trials cancelled,
//     finished trials' statistics kept — instead of stalling every other
//     job. Under -DHJDES_FAULT=ON the monitor also releases an injected
//     shard wedge (fault::wedge_shard(-1)) so the stuck trial can drain;
//     this stands in for the shard re-election self-healing the ROADMAP
//     plans for the partitioned engine.
//
// Everything observable lands in des.serve.* metrics (obs registry).

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "serve/aggregate.hpp"
#include "serve/job_spec.hpp"
#include "support/topology.hpp"

namespace hjdes::serve {

/// Fleet-level knobs of a TrialScheduler.
struct SchedulerConfig {
  /// Worker threads; 0 = one per available cpu, capped at 8.
  int workers = 0;

  /// Worker -> core placement (compact keeps a job's packed batches on
  /// neighbouring cores).
  support::PinPolicy pin = support::PinPolicy::kCompact;

  /// Admission bound: jobs queued or running at once. Submissions beyond it
  /// are rejected, not blocked — the client owns its backpressure.
  std::size_t max_queued_jobs = 16;

  /// Admission bound: trials a single job may expand into.
  std::size_t max_trials_per_job = 65536;

  /// Master switch for packed replication routing (jobs can also opt out
  /// per-spec with "pack": false).
  bool pack = true;

  /// Record per-trial outcomes (index, ms, events, checksum) in JobResult.
  /// Serving mode leaves this off: a million-trial job must aggregate in
  /// O(1) memory.
  bool keep_trials = false;

  /// Deadline monitor poll period.
  int poll_ms = 20;
};

/// Outcome of submitting a job.
struct Admission {
  bool accepted = false;
  std::string reason;  ///< reject cause; "" when accepted
};

/// Build the JobResult a refused submission reports (status kRejected).
JobResult make_rejected(std::string id, std::string reason);

class TrialScheduler {
 public:
  /// `on_result` fires exactly once per accepted job, from a worker thread,
  /// when its last trial retires. Callbacks must be thread-safe.
  using ResultCallback = std::function<void(const JobResult&)>;

  TrialScheduler(const SchedulerConfig& config, ResultCallback on_result);

  /// Drains accepted jobs, then joins the workers and the monitor.
  ~TrialScheduler();

  TrialScheduler(const TrialScheduler&) = delete;
  TrialScheduler& operator=(const TrialScheduler&) = delete;

  /// Validate + admit `spec`. On acceptance the job's trials are queued and
  /// its result will reach the callback; on rejection nothing ran and the
  /// caller reports make_rejected(...) itself (the scheduler never invokes
  /// the callback for work it refused).
  Admission submit(const JobSpec& spec);

  /// Parse one JSON line, then submit. `rejected_id` (may be null) receives
  /// the spec's id (or "" when unparseable) so rejects stay attributable.
  Admission submit_line(std::string_view line, std::string* rejected_id);

  /// Block until every accepted job has completed and reported.
  void drain();

  /// Worker threads actually running (after the 0 = auto resolution).
  int workers() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hjdes::serve
