#include "serve/trial_scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "check/checked_cell.hpp"
#include "check/hb.hpp"
#include "check/invariant.hpp"
#include "circuit/stimulus.hpp"
#include "des/engines.hpp"
#include "des/model_registry.hpp"
#include "des/packed_engine.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "support/event_arena.hpp"
#include "support/timer.hpp"

namespace hjdes::serve {

JobResult make_rejected(std::string id, std::string reason) {
  JobResult r;
  r.id = std::move(id);
  r.status = JobStatus::kRejected;
  r.reason = std::move(reason);
  return r;
}

namespace {

using Clock = std::chrono::steady_clock;

/// des.serve.* metrics, resolved once (registry lookups lock a map).
struct ServeMetrics {
  obs::Counter& jobs_accepted = obs::metrics().counter("des.serve.jobs_accepted");
  obs::Counter& jobs_rejected = obs::metrics().counter("des.serve.jobs_rejected");
  obs::Counter& jobs_completed = obs::metrics().counter("des.serve.jobs_completed");
  obs::Counter& jobs_degraded = obs::metrics().counter("des.serve.jobs_degraded");
  obs::Counter& deadline_hits = obs::metrics().counter("des.serve.deadline_hits");
  obs::Counter& trials_completed = obs::metrics().counter("des.serve.trials_completed");
  obs::Counter& trials_failed = obs::metrics().counter("des.serve.trials_failed");
  obs::Counter& trials_packed = obs::metrics().counter("des.serve.trials_packed");
  obs::Counter& packed_passes = obs::metrics().counter("des.serve.packed_passes");
  obs::Histogram& trial_us = obs::metrics().histogram("des.serve.trial_us");
};

ServeMetrics& serve_metrics() {
  static ServeMetrics m;
  return m;
}

std::atomic<std::uint64_t> g_job_ordinal{0};

/// std::mutex + SyncClock bundle: the mutex serializes, the SyncClock
/// mirrors the edge into hjcheck's happens-before relation so checked_cell
/// accesses under the lock are race-clean (the spinlock analogue is TwGuard
/// in des/timewarp_engine.cpp).
class HbLock {
 public:
  HbLock(std::mutex& mu, check::SyncClock& hb) : mu_(mu), hb_(hb) {
    mu_.lock();
    hb_.acquire();
  }
  ~HbLock() {
    hb_.release();
    mu_.unlock();
  }
  HbLock(const HbLock&) = delete;
  HbLock& operator=(const HbLock&) = delete;

 private:
  std::mutex& mu_;
  check::SyncClock& hb_;
};

}  // namespace

struct TrialScheduler::Impl {
  /// One accepted job: immutable inputs plus the mutex-guarded running
  /// aggregate. Held by shared_ptr from the queue's work units, so a job
  /// outlives its last trial no matter how units interleave.
  struct Job {
    JobSpec spec;
    circuit::Netlist netlist;
    std::vector<TrialSpec> trials;
    const des::EngineInfo* engine = nullptr;
    des::RunConfig run_config;
    Clock::time_point start;
    Clock::time_point deadline;
    bool has_deadline = false;

    /// Running aggregate, wrapped so hjcheck verifies every access is
    /// bracketed by HbLock(mu, hb).
    struct Accounting {
      JobResult result;
      bool degraded = false;
      std::size_t units_remaining = 0;
    };
    std::mutex mu;
    check::SyncClock hb;
    check::checked_cell<Accounting> acct;  // guarded by mu

    Job() { acct.set_label("serve.job.accounting"); }
  };

  /// A unit of worker work: one scalar trial, or a packed batch of up to 64
  /// identically-timed replications retired in a single bit-parallel pass.
  struct WorkUnit {
    std::shared_ptr<Job> job;
    std::size_t first = 0;
    std::size_t count = 1;
    bool packed = false;
  };

  SchedulerConfig config;
  ResultCallback on_result;
  int worker_count = 0;

  struct QueueState {
    std::deque<WorkUnit> queue;
    bool stopping = false;
  };
  std::mutex queue_mu;
  check::SyncClock queue_hb;
  std::condition_variable queue_cv;
  check::checked_cell<QueueState> qstate;  // guarded by queue_mu

  std::mutex jobs_mu;
  check::SyncClock jobs_hb;
  std::condition_variable jobs_cv;
  check::checked_cell<std::vector<std::shared_ptr<Job>>>
      active;  // guarded by jobs_mu

  std::vector<std::thread> workers;
  std::thread monitor;
  std::atomic<bool> monitor_stop{false};
  std::uint64_t last_beats = 0;  // monitor thread only

  explicit Impl(const SchedulerConfig& cfg, ResultCallback cb)
      : config(cfg), on_result(std::move(cb)) {
    qstate.set_label("serve.queue");
    active.set_label("serve.active_jobs");
    const support::MachineTopology& topo = support::machine_topology();
    worker_count = config.workers > 0
                       ? config.workers
                       : std::max(1, std::min(topo.cpu_count(), 8));
    obs::metrics().gauge("des.serve.workers").set(worker_count);
    const std::vector<int> plan =
        support::pinning_plan(topo, worker_count, config.pin);
    for (int i = 0; i < worker_count; ++i) {
      const int cpu = i < static_cast<int>(plan.size()) ? plan[i] : -1;
      workers.emplace_back([this, i, cpu] { worker_body(i, cpu); });
    }
    monitor = std::thread([this] { monitor_body(); });
  }

  ~Impl() {
    drain();
    {
      HbLock lock(queue_mu, queue_hb);
      qstate.write().stopping = true;
    }
    queue_cv.notify_all();
    for (std::thread& w : workers) w.join();
    monitor_stop.store(true, std::memory_order_relaxed);
    monitor.join();
  }

  void drain() {
    std::unique_lock<std::mutex> lock(jobs_mu);
    // raw() in the predicate: the cv re-checks before the hjcheck acquire
    // could run; the checked read happens once the wait returns.
    jobs_cv.wait(lock, [this] { return active.raw().empty(); });
    jobs_hb.acquire();
    (void)active.read();
    jobs_hb.release();
  }

  // --- worker side ---------------------------------------------------------

  void worker_body(int index, int cpu) {
    fault::sched::bind_thread(index);
    if (cpu >= 0) support::pin_current_thread(cpu);
    // The warm half of "no per-trial cold start": one arena for the thread's
    // whole lifetime. Every trial executed here draws its queue storage from
    // slabs that previous trials already faulted in and freed back.
    EventArena arena;
    ArenaScope scope(&arena);
    while (true) {
      WorkUnit unit;
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        queue_cv.wait(lock, [this] {
          const QueueState& q = qstate.raw();  // see drain()
          return q.stopping || !q.queue.empty();
        });
        queue_hb.acquire();
        QueueState& q = qstate.write();
        if (q.queue.empty()) {  // stopping, nothing left
          queue_hb.release();
          break;
        }
        unit = std::move(q.queue.front());
        q.queue.pop_front();
        queue_hb.release();
      }
      execute(unit);
      fault::heartbeat();
    }
  }

  void execute(const WorkUnit& unit) {
    Job& job = *unit.job;
    bool cancelled;
    {
      HbLock lock(job.mu, job.hb);
      cancelled = job.acct.read().degraded;
    }
    if (cancelled) {
      record_cancelled(unit);
    } else if (unit.packed) {
      run_packed_unit(unit);
    } else {
      run_scalar_unit(unit);
    }
    finish_unit(unit);
  }

  void run_scalar_unit(const WorkUnit& unit) {
    Job& job = *unit.job;
    const TrialSpec& trial = job.trials[unit.first];
    if (job.spec.model != "circuit") {
      run_model_trial(job, trial);
      return;
    }
    const circuit::Stimulus stimulus = circuit::random_stimulus(
        job.netlist, trial.vectors, trial.interval, trial.seed);
    const des::SimInput input(job.netlist, stimulus);
    Timer timer;
    // The seq engine runs directly (not via the registry entry) so it uses
    // this worker's persistent ArenaScope instead of building a throwaway
    // per-run arena; parallel engines manage their own worker arenas.
    const des::SimResult result =
        job.engine->name == "seq" ? des::run_sequential(input)
                                  : job.engine->run(input, job.run_config);
    const double ms = timer.millis();
    const std::uint64_t checksum =
        config.keep_trials ? result_checksum(result) : 0;
    record_trial(job, trial, result.events_processed, checksum, ms,
                 /*packed=*/false);
  }

  void run_model_trial(Job& job, const TrialSpec& trial) {
    // Admission already dry-built every sweep point, so a failure here
    // would be a registry bug, not client input; count it as a failed
    // trial rather than aborting the worker.
    std::string error;
    std::unique_ptr<des::Model> model = des::make_model(
        job.spec.model, trial.params, trial.seed, &error);
    if (model == nullptr) {
      serve_metrics().trials_failed.increment();
      HbLock lock(job.mu, job.hb);
      JobResult& r = job.acct.write().result;
      r.failed += 1;
      if (config.keep_trials) {
        TrialOutcome o;
        o.index = trial.index;
        o.ok = false;
        r.outcomes.push_back(o);
      }
      return;
    }
    Timer timer;
    const des::ModelResult result = job.engine->run_model(*model,
                                                          job.run_config);
    const double ms = timer.millis();
    record_trial(job, trial, result.events_processed, result.checksum, ms,
                 /*packed=*/false);
  }

  void run_packed_unit(const WorkUnit& unit) {
    Job& job = *unit.job;
    std::vector<circuit::Stimulus> stimuli;
    stimuli.reserve(unit.count);
    std::vector<const circuit::Stimulus*> lanes;
    lanes.reserve(unit.count);
    for (std::size_t i = 0; i < unit.count; ++i) {
      const TrialSpec& t = job.trials[unit.first + i];
      stimuli.push_back(circuit::random_stimulus(job.netlist, t.vectors,
                                                 t.interval, t.seed));
    }
    for (const circuit::Stimulus& s : stimuli) lanes.push_back(&s);
    Timer timer;
    // Ladder storage: the fastest packed configuration in BENCH_core.json
    // (seq-ladder-bp64 beats seq-bp64 by ~1.3x on every circuit).
    const des::PackedResult packed =
        des::run_packed(job.netlist, lanes, des::QueueKind::kLadder);
    // Amortized per-trial cost: the pass simulated count trials at once.
    const double ms = timer.millis() / static_cast<double>(unit.count);
    serve_metrics().packed_passes.increment();
    for (std::size_t i = 0; i < unit.count; ++i) {
      const des::SimResult& lane = packed.lanes[i];
      record_trial(job, job.trials[unit.first + i], lane.events_processed,
                   config.keep_trials ? result_checksum(lane) : 0, ms,
                   /*packed=*/true);
    }
  }

  void record_trial(Job& job, const TrialSpec& trial, std::uint64_t events,
                    std::uint64_t checksum, double ms, bool packed) {
    serve_metrics().trials_completed.increment();
    if (packed) serve_metrics().trials_packed.increment();
    serve_metrics().trial_us.record(
        static_cast<std::uint64_t>(ms * 1e3));
    HbLock lock(job.mu, job.hb);
    JobResult& r = job.acct.write().result;
    // Corrupting seeded defect (hjverify true positive): lose one completed
    // increment; the admission ledger oracle flags the job at retirement.
    if (!fault::should_inject(fault::Site::kTrialMiscount)) r.completed += 1;
    if (packed) r.packed_trials += 1;
    r.events_stats.add(static_cast<double>(events));
    r.ms_stats.add(ms);
    r.total_events += events;
    if (config.keep_trials) {
      TrialOutcome o;
      o.index = trial.index;
      o.ok = true;
      o.packed = packed;
      o.ms = ms;
      o.events = events;
      o.checksum = checksum;
      r.outcomes.push_back(o);
    }
  }

  void record_cancelled(const WorkUnit& unit) {
    Job& job = *unit.job;
    serve_metrics().trials_failed.add(unit.count);
    HbLock lock(job.mu, job.hb);
    JobResult& r = job.acct.write().result;
    r.failed += unit.count;
    if (config.keep_trials) {
      for (std::size_t i = 0; i < unit.count; ++i) {
        TrialOutcome o;
        o.index = job.trials[unit.first + i].index;
        o.ok = false;
        r.outcomes.push_back(o);
      }
    }
  }

  void finish_unit(const WorkUnit& unit) {
    Job& job = *unit.job;
    JobResult finished;
    bool done = false;
    {
      HbLock lock(job.mu, job.hb);
      Job::Accounting& a = job.acct.write();
      if (--a.units_remaining == 0) {
        done = true;
#if defined(HJDES_CHECK_ENABLED)
        // Admission/accounting oracle: every admitted trial retires exactly
        // once (completed or failed); packed retirements are a subset of
        // completions. A mismatch means an increment was lost or doubled
        // (the kTrialMiscount seeded defect).
        if (a.result.completed + a.result.failed != a.result.trials) {
          check::invariant::report(
              check::invariant::Oracle::kAdmission,
              "job '" + a.result.id + "' retired " +
                  std::to_string(a.result.completed) + " completed + " +
                  std::to_string(a.result.failed) + " failed of " +
                  std::to_string(a.result.trials) + " admitted trial(s)");
        }
        if (a.result.packed_trials > a.result.completed) {
          check::invariant::report(
              check::invariant::Oracle::kAdmission,
              "job '" + a.result.id + "': " +
                  std::to_string(a.result.packed_trials) +
                  " packed trial(s) exceed " +
                  std::to_string(a.result.completed) + " completion(s)");
        }
#endif
        a.result.status =
            a.degraded ? JobStatus::kDegraded : JobStatus::kOk;
        a.result.elapsed_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - job.start)
                .count();
        finished = a.result;
      }
    }
    if (!done) return;
    serve_metrics().jobs_completed.increment();
    if (finished.status == JobStatus::kDegraded) {
      serve_metrics().jobs_degraded.increment();
    }
    if (on_result) on_result(finished);
    {
      HbLock lock(jobs_mu, jobs_hb);
      std::erase(active.write(), unit.job);
    }
    jobs_cv.notify_all();
  }

  // --- monitor side --------------------------------------------------------

  void monitor_body() {
    while (!monitor_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max(1, config.poll_ms)));
      const std::uint64_t beats = fault::heartbeat_total();
      const Clock::time_point now = Clock::now();
      std::vector<std::shared_ptr<Job>> snapshot;
      {
        HbLock lock(jobs_mu, jobs_hb);
        snapshot = active.read();
      }
      for (const std::shared_ptr<Job>& job : snapshot) {
        if (!job->has_deadline || now < job->deadline) continue;
        HbLock lock(job->mu, job->hb);
        Job::Accounting& a = job->acct.write();
        if (a.degraded) continue;
        a.degraded = true;
        // The heartbeat board beats only while a tool-level watchdog has it
        // armed; when it is, a frozen board distinguishes "wedged" from
        // "merely slow" in the degrade reason.
        const bool stalled =
            fault::watchdog_armed() && beats == last_beats;
        a.result.reason =
            "deadline " + std::to_string(job->spec.deadline_ms) +
            "ms exceeded; pending trials cancelled" +
            (stalled ? " (fleet heartbeats stalled)" : "");
        serve_metrics().deadline_hits.increment();
        // Fault-injection rescue: release an injected shard wedge so the
        // stuck trial can drain instead of pinning its worker forever. A
        // no-op outside -DHJDES_FAULT=ON builds; real shard re-election is
        // the ROADMAP's self-healing follow-up.
        if (fault::compiled_in()) fault::wedge_shard(-1);
      }
      last_beats = beats;
    }
  }

  // --- submission side -----------------------------------------------------

  Admission submit(const JobSpec& spec) {
    Admission a;
    const des::EngineInfo* engine = des::find_engine(spec.engine);
    if (engine == nullptr) {
      a.reason = "unknown engine '" + spec.engine + "' (" +
                 des::engine_list() + ")";
      return reject(a);
    }
    const std::size_t trials = spec.trial_count();
    if (trials == 0 || trials > config.max_trials_per_job) {
      a.reason = "job expands to " + std::to_string(trials) +
                 " trials, cap is " +
                 std::to_string(config.max_trials_per_job);
      return reject(a);
    }

    auto job = std::make_shared<Job>();
    job->spec = spec;
    if (job->spec.id.empty()) {
      job->spec.id =
          "job-" + std::to_string(
                       g_job_ordinal.fetch_add(1, std::memory_order_relaxed));
    }
    std::string error;
    if (spec.model == "circuit") {
      if (!load_job_circuit(spec, &job->netlist, &error)) {
        a.reason = error;
        return reject(a);
      }
    } else {
      // Dry-build every sweep point now so bad model parameters bounce at
      // admission with the factory's reason, never on a worker. Replications
      // vary only the injected seed, so one build per point suffices —
      // a point that pins "seed" itself would collapse its replications
      // into identical trials, so that is a reject too.
      const std::vector<std::string> points =
          spec.sweep_params.empty()
              ? std::vector<std::string>{spec.model_params}
              : spec.sweep_params;
      for (const std::string& point : points) {
        des::ModelParams params;
        if (des::ModelParams::parse(point, &params, &error) &&
            params.has("seed")) {
          a.reason = std::string(des::kSeedConflictError) +
                     ": model params '" + point + "' must not pin 'seed' "
                     "(per-trial seeds come from the job's 'seed' field)";
          return reject(a);
        }
        if (des::make_model(spec.model, point, spec.seed, &error) ==
            nullptr) {
          a.reason = error;
          return reject(a);
        }
      }
    }

    job->engine = engine;
    job->run_config.workers = spec.workers;
    job->run_config.model = spec.model;
    job->run_config.model_params = spec.model_params;
    des::RunValidation validation = des::validate_run_config(
        job->run_config, engine->caps, engine->name);
    if (!validation.ok()) {
      a.reason = validation.errors.front();
      return reject(a);
    }
    if (spec.model != "circuit" && engine->run_model == nullptr) {
      a.reason = "engine '" + spec.engine + "' cannot run model '" +
                 spec.model + "'";
      return reject(a);
    }

    // Fully initialize the job before publishing it to the monitor (via
    // `active`) and to the workers (via the queue); after publication only
    // the HbLock-guarded accounting cell may be touched. The lock edges
    // order these writes before every consumer.
    job->trials = expand_trials(job->spec);
    job->start = Clock::now();
    if (job->spec.deadline_ms > 0) {
      job->has_deadline = true;
      job->deadline =
          job->start + std::chrono::milliseconds(job->spec.deadline_ms);
    }

    // Carve the trial list into work units. Replications inside one sweep
    // point are contiguous and share a stimulus timeline, so runs of >= 2
    // trials with equal (vectors, interval) ride the 64-lane packed core
    // when the job, the scheduler and the engine all allow it. Model jobs
    // are never packable: the lanes trick packs circuit stimulus bits.
    const bool packable = config.pack && job->spec.pack &&
                          engine->caps.honors_bitparallel &&
                          job->spec.model == "circuit";
    std::vector<WorkUnit> units;
    std::size_t i = 0;
    const std::size_t n = job->trials.size();
    while (i < n) {
      std::size_t run = 1;
      if (packable) {
        while (i + run < n &&
               run < static_cast<std::size_t>(des::kPackedLanes) &&
               job->trials[i + run].vectors == job->trials[i].vectors &&
               job->trials[i + run].interval == job->trials[i].interval) {
          ++run;
        }
      }
      WorkUnit unit;
      unit.job = job;
      unit.first = i;
      unit.count = run;
      unit.packed = run >= 2;
      units.push_back(std::move(unit));
      i += run;
    }
    {
      Job::Accounting& acct = job->acct.write();
      acct.result.id = job->spec.id;
      acct.result.trials = job->trials.size();
      acct.units_remaining = units.size();
    }
#if defined(HJDES_CHECK_ENABLED)
    // Packed-batch accounting oracle: the carved units must cover each
    // admitted trial exactly once.
    {
      std::size_t covered = 0;
      for (const WorkUnit& u : units) covered += u.count;
      if (covered != job->trials.size()) {
        check::invariant::report(
            check::invariant::Oracle::kAdmission,
            "job '" + job->spec.id + "': work units cover " +
                std::to_string(covered) + " of " +
                std::to_string(job->trials.size()) + " trial(s)");
      }
    }
#endif

    {
      HbLock lock(jobs_mu, jobs_hb);
      std::vector<std::shared_ptr<Job>>& act = active.write();
      if (act.size() >= config.max_queued_jobs) {
        a.reason = "queue full (" + std::to_string(act.size()) +
                   " jobs in flight, cap " +
                   std::to_string(config.max_queued_jobs) + ")";
        return reject(a);
      }
      act.push_back(job);
#if defined(HJDES_CHECK_ENABLED)
      // Admission oracle: the in-flight set may never exceed the cap the
      // guard above enforces.
      if (act.size() > config.max_queued_jobs) {
        check::invariant::report(
            check::invariant::Oracle::kAdmission,
            "admitted job '" + job->spec.id + "' overflows the queue cap (" +
                std::to_string(act.size()) + " > " +
                std::to_string(config.max_queued_jobs) + ")");
      }
#endif
    }

    {
      HbLock lock(queue_mu, queue_hb);
      QueueState& q = qstate.write();
      for (WorkUnit& u : units) q.queue.push_back(std::move(u));
    }
    queue_cv.notify_all();
    serve_metrics().jobs_accepted.increment();
    a.accepted = true;
    return a;
  }

  Admission reject(Admission a) {
    a.accepted = false;
    serve_metrics().jobs_rejected.increment();
    return a;
  }
};

TrialScheduler::TrialScheduler(const SchedulerConfig& config,
                               ResultCallback on_result)
    : impl_(std::make_unique<Impl>(config, std::move(on_result))) {}

TrialScheduler::~TrialScheduler() = default;

Admission TrialScheduler::submit(const JobSpec& spec) {
  return impl_->submit(spec);
}

Admission TrialScheduler::submit_line(std::string_view line,
                                      std::string* rejected_id) {
  JobSpec spec;
  std::string error;
  if (!parse_job_spec_line(line, &spec, &error)) {
    if (rejected_id != nullptr) *rejected_id = spec.id;
    serve_metrics().jobs_rejected.increment();
    return Admission{false, error};
  }
  if (rejected_id != nullptr) *rejected_id = spec.id;
  return impl_->submit(spec);
}

void TrialScheduler::drain() { impl_->drain(); }

int TrialScheduler::workers() const noexcept { return impl_->worker_count; }

}  // namespace hjdes::serve
