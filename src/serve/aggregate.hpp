#pragma once
// Streaming per-job aggregation for the serve layer: each finished trial
// folds into Welford accumulators (support/stats.hpp RunningStats) so a
// million-trial job costs O(1) memory, and the final JobResult renders as
// one line of JSON with min/mean/stddev/Student-t 95% CI per quantity —
// the serving analogue of the paper's Figure 7 "average time + CI" table.

#include <cstdint>
#include <string>
#include <vector>

#include "des/sim_result.hpp"
#include "support/stats.hpp"

namespace hjdes::serve {

/// One finished (or failed) trial as recorded in a JobResult.
struct TrialOutcome {
  std::size_t index = 0;        ///< TrialSpec::index
  bool ok = false;              ///< false: failed / abandoned past deadline
  bool packed = false;          ///< retired via the 64-lane packed core
  double ms = 0.0;              ///< wall time of the (possibly shared) pass
  std::uint64_t events = 0;     ///< real events the trial simulated
  std::uint64_t checksum = 0;   ///< result_checksum() of the waveforms
};

/// Completion status of a job.
enum class JobStatus : std::uint8_t {
  kOk,        ///< every trial completed
  kDegraded,  ///< deadline/fault losses; surviving trials' stats are valid
  kRejected,  ///< admission refused; no trial ran
};

std::string_view job_status_name(JobStatus status);

/// Aggregated outcome of one job, streamed to the result callback exactly
/// once per submitted (or rejected) job.
struct JobResult {
  std::string id;
  JobStatus status = JobStatus::kOk;
  std::string reason;           ///< reject/degrade cause; "" when kOk

  std::size_t trials = 0;       ///< expanded trial count
  std::size_t completed = 0;    ///< trials with recorded results
  std::size_t failed = 0;       ///< trials lost to deadline/faults
  std::size_t packed_trials = 0;///< completed trials retired in packed passes

  RunningStats events_stats;    ///< per-trial real-event counts
  RunningStats ms_stats;        ///< per-trial wall milliseconds
  double elapsed_ms = 0.0;      ///< submit -> completion wall time
  std::uint64_t total_events = 0;

  /// Per-trial outcomes, kept only when the scheduler is configured with
  /// keep_trials (tests, bit-identity audits); empty in serving mode.
  std::vector<TrialOutcome> outcomes;
};

/// Order-independent-enough digest of a simulation's observable behaviour:
/// FNV-1a over every output's (time, value) records in waveform order plus
/// the real event count. Two behaviourally identical results always agree;
/// the serve tests use it to hold packed trials bit-identical to standalone
/// runs without shipping whole waveforms through the aggregator.
std::uint64_t result_checksum(const des::SimResult& result);

/// Render `result` as one line of JSON (no trailing newline):
///   {"job":...,"status":...,"trials":N,"completed":N,"failed":N,
///    "packed_trials":N,"elapsed_ms":X,"events":{...},"ms":{...}}
/// The "events"/"ms" objects carry count/min/max/mean/stddev/ci95 with the
/// CI built from the Student-t helper (support/stats.hpp); both are omitted
/// when no trial completed. "reason" appears for rejected/degraded jobs.
std::string job_result_json(const JobResult& result);

}  // namespace hjdes::serve
