// Domain example 2 — capacity planning for parallel simulation: profile the
// available parallelism of a tree multiplier (the paper's Figure 1 insight)
// and relate it to the speedup actually achieved by the parallel engines.
//
//   $ ./multiplier_profile [--bits 8] [--workers 4]
#include <algorithm>
#include <cstdio>

#include "circuit/generators.hpp"
#include "des/engines.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"

using namespace hjdes;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int bits = static_cast<int>(cli.get_int("bits", 8));
  const int workers = static_cast<int>(cli.get_int("workers", 4));

  circuit::Netlist mult = circuit::tree_multiplier(bits);
  circuit::Stimulus stim = circuit::random_stimulus(mult, 2, 1000, 12345);
  des::SimInput input(mult, stim);

  std::printf("tree multiplier, %d bits: %zu nodes, %zu edges, depth %zu\n",
              bits, mult.node_count(), mult.edge_count(), mult.depth());
  std::printf("stimulus: %zu initial events\n\n", stim.total_events());

  // 1. Available-parallelism profile (paper Figure 1).
  des::ParallelismProfile prof = des::profile_parallelism(input);
  std::printf("available parallelism: peak %llu, average %.1f over %zu "
              "computation steps\n",
              static_cast<unsigned long long>(prof.peak_parallelism()),
              prof.average_parallelism(), prof.rounds.size());

  const double peak = static_cast<double>(prof.peak_parallelism());
  const std::size_t stride = std::max<std::size_t>(1, prof.rounds.size() / 40);
  for (std::size_t i = 0; i < prof.rounds.size(); i += stride) {
    std::uint64_t v = 0;
    for (std::size_t k = i; k < std::min(i + stride, prof.rounds.size()); ++k) {
      v = std::max(v, prof.rounds[k].active_nodes);
    }
    int bar = static_cast<int>(40.0 * static_cast<double>(v) / peak);
    std::printf("step %4zu |%-40.*s| %llu\n", i, bar,
                "########################################",
                static_cast<unsigned long long>(v));
  }

  // 2. What that means for actual speedup.
  Timer t;
  des::SimResult seq = des::run_sequential(input);
  const double seq_s = t.seconds();
  std::printf("\ntotal events: %llu, sequential time %.1f ms\n",
              static_cast<unsigned long long>(seq.events_processed),
              seq_s * 1e3);

  for (int w = 1; w <= workers; w *= 2) {
    des::HjEngineConfig cfg;
    cfg.workers = w;
    t.reset();
    des::SimResult par = des::run_hj(input, cfg);
    const double par_s = t.seconds();
    std::printf("hj %d worker(s): %.1f ms (%.2fx vs sequential)%s\n", w,
                par_s * 1e3, seq_s / par_s,
                des::same_behaviour(seq, par) ? "" : "  MISMATCH!");
  }
  std::printf(
      "\nThe Figure-1 lesson: speedup is bounded by the parallelism hump — "
      "larger circuits (try --bits 12) offer more.\n");
  return 0;
}
