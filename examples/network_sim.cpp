// Domain example 4 — toward the paper's §6 future work ("exploring
// larger-scale DES application, such as wireless mobile ad hoc network
// simulation"): a packet-level network simulation built directly on the hj
// actor layer. Routers on a torus grid are actors; packets hop with
// dimension-order (XY) routing and a fixed per-link latency, so every
// packet's end-to-end latency is hops * link_delay — which the program
// verifies for every delivered packet while the actor runtime fans the
// forwarding work out across workers.
//
//   $ ./network_sim [--grid 8] [--packets 20000] [--workers 4]
#include <atomic>
#include <cstdio>
#include <vector>

#include "hj/actor.hpp"
#include "hj/runtime.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

using namespace hjdes;

namespace {

struct Packet {
  std::int32_t dst_x = 0, dst_y = 0;
  std::int64_t inject_time = 0;
  std::int64_t now = 0;  ///< virtual arrival time at the current router
  std::int32_t hops = 0;
};

constexpr std::int64_t kLinkDelay = 5;

class Router;

struct Mesh {
  int side = 0;
  std::vector<Router>* routers = nullptr;
  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> forwarded{0};
  std::atomic<std::uint64_t> latency_sum{0};
  std::atomic<std::uint64_t> bad_packets{0};
};

class Router final : public hj::Actor<Packet> {
 public:
  void init(Mesh* mesh, int x, int y) {
    mesh_ = mesh;
    x_ = x;
    y_ = y;
  }

  std::uint64_t routed() const { return routed_; }

 protected:
  void process(Packet p) override;

 private:
  Mesh* mesh_ = nullptr;
  int x_ = 0, y_ = 0;
  std::uint64_t routed_ = 0;  // actor-private, no synchronization needed
};

Router& router_at(Mesh& mesh, int x, int y) {
  const int side = mesh.side;
  x = (x + side) % side;
  y = (y + side) % side;
  return (*mesh.routers)[static_cast<std::size_t>(y * side + x)];
}

/// Signed shortest step along one torus dimension.
int torus_step(int from, int to, int side) {
  int diff = (to - from + side) % side;
  if (diff == 0) return 0;
  return diff <= side / 2 ? 1 : -1;
}

void Router::process(Packet p) {
  ++routed_;
  if (p.dst_x == x_ && p.dst_y == y_) {
    // Delivered: verify latency == hops * link delay.
    mesh_->delivered.fetch_add(1, std::memory_order_relaxed);
    mesh_->latency_sum.fetch_add(
        static_cast<std::uint64_t>(p.now - p.inject_time),
        std::memory_order_relaxed);
    if (p.now - p.inject_time !=
        static_cast<std::int64_t>(p.hops) * kLinkDelay) {
      mesh_->bad_packets.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  // Dimension-order routing: fix X first, then Y.
  int step_x = torus_step(x_, p.dst_x, mesh_->side);
  int nx = x_, ny = y_;
  if (step_x != 0) {
    nx += step_x;
  } else {
    ny += torus_step(y_, p.dst_y, mesh_->side);
  }
  p.now += kLinkDelay;
  ++p.hops;
  mesh_->forwarded.fetch_add(1, std::memory_order_relaxed);
  router_at(*mesh_, nx, ny).send(p);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int side = static_cast<int>(cli.get_int("grid", 8));
  const int packets = static_cast<int>(cli.get_int("packets", 20000));
  const int workers = static_cast<int>(cli.get_int("workers", 4));

  Mesh mesh;
  mesh.side = side;
  std::vector<Router> routers(static_cast<std::size_t>(side * side));
  mesh.routers = &routers;
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      routers[static_cast<std::size_t>(y * side + x)].init(&mesh, x, y);
    }
  }

  std::printf("torus %dx%d, %d packets, %d workers, link delay %lld\n", side,
              side, packets, workers, static_cast<long long>(kLinkDelay));

  hj::Runtime rt(workers);
  Xoshiro256 rng(20150207);  // PMAM'15 conference date
  Timer t;
  rt.run([&] {
    for (int i = 0; i < packets; ++i) {
      Packet p;
      int sx = static_cast<int>(rng.below(static_cast<std::uint64_t>(side)));
      int sy = static_cast<int>(rng.below(static_cast<std::uint64_t>(side)));
      p.dst_x = static_cast<int>(rng.below(static_cast<std::uint64_t>(side)));
      p.dst_y = static_cast<int>(rng.below(static_cast<std::uint64_t>(side)));
      p.inject_time = p.now = i;  // staggered injection times
      router_at(mesh, sx, sy).send(p);
    }
  });
  const double secs = t.seconds();

  const std::uint64_t delivered = mesh.delivered.load();
  const std::uint64_t forwarded = mesh.forwarded.load();
  std::printf("delivered %llu/%d packets, %llu hops total, avg latency %.1f "
              "time units\n",
              static_cast<unsigned long long>(delivered), packets,
              static_cast<unsigned long long>(forwarded),
              delivered ? static_cast<double>(mesh.latency_sum.load()) /
                              static_cast<double>(delivered)
                        : 0.0);
  std::printf("wall time %.1f ms (%.2f M router events/s)\n", secs * 1e3,
              static_cast<double>(forwarded + delivered) / secs / 1e6);

  std::uint64_t max_load = 0;
  for (const Router& r : routers) max_load = std::max(max_load, r.routed());
  std::printf("hottest router handled %llu events\n",
              static_cast<unsigned long long>(max_load));

  if (delivered != static_cast<std::uint64_t>(packets) ||
      mesh.bad_packets.load() != 0) {
    std::printf("FAILED: lost packets or latency mismatches (%llu bad)\n",
                static_cast<unsigned long long>(mesh.bad_packets.load()));
    return 1;
  }
  std::printf("all packets delivered with exact hop-count latency.\n");
  return 0;
}
