// Domain example 5 — the paper's §6 claim made concrete: the conservative
// DES machinery scales from logic circuits to communication networks. A
// store-and-forward network (cyclic topology, queueing at every router) is
// simulated twice: with the sequential global event list (related-work
// approach #4) and with the Chandy-Misra-Bryant null-message engine on the
// hj runtime (approach #5, the paper's). Results must match bit-for-bit.
//
//   $ ./conservative_netsim [--topology torus|ring|star|random] [--size 5]
//                           [--packets 3000] [--horizon 2000] [--workers 4]
#include <cstdio>

#include "netsim/netsim.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"

using namespace hjdes;
using namespace hjdes::netsim;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string kind = cli.get("topology", "torus");
  const int size = static_cast<int>(cli.get_int("size", 5));
  const auto packets =
      static_cast<std::size_t>(cli.get_int("packets", 3000));
  const Time horizon = cli.get_int("horizon", 2000);
  const int workers = static_cast<int>(cli.get_int("workers", 4));

  Topology topo = kind == "ring"   ? ring_topology(size * size, 2, 3)
                  : kind == "star" ? star_topology(size * size, 2, 3)
                  : kind == "random"
                      ? random_topology(size * size, 2 * size * size, 3, 4, 7)
                      : torus_topology(size, 2, 3);
  Traffic traffic = random_traffic(topo, packets, horizon, 42);

  std::printf("%s topology: %zu nodes, %zu links; %zu packets over horizon "
              "%lld\n",
              kind.c_str(), topo.node_count(), topo.link_count(), packets,
              static_cast<long long>(horizon));

  // Fit the horizon to just past the last delivery: simulating an empty
  // virtual-time tail only produces null-message chatter.
  Time end_time = 1;
  {
    NetSimResult probe = run_global_list(topo, traffic, horizon * 1000);
    for (const PacketRecord& p : probe.packets) {
      end_time = std::max(end_time, p.delivered + 1);
    }
  }

  Timer t;
  NetSimResult ref = run_global_list(topo, traffic, end_time);
  const double seq_s = t.seconds();

  t.reset();
  NetSimResult cmb = run_cmb(topo, traffic, end_time,
                             CmbConfig{.workers = workers});
  const double cmb_s = t.seconds();

  if (!same_behaviour(ref, cmb)) {
    std::printf("MISMATCH: %s\n", diff_behaviour(ref, cmb).c_str());
    return 1;
  }

  std::printf("\ndelivered %llu/%zu packets, avg end-to-end latency %.1f\n",
              static_cast<unsigned long long>(cmb.delivered_count()), packets,
              cmb.average_latency());
  std::printf("events %llu, forwards %llu\n",
              static_cast<unsigned long long>(cmb.events_processed),
              static_cast<unsigned long long>(cmb.forwards));
  std::printf("global event list: %.1f ms\n", seq_s * 1e3);
  std::printf("CMB x%d workers:   %.1f ms  (%llu null messages = %.1f per "
              "real event, %llu node activations)\n",
              workers, cmb_s * 1e3,
              static_cast<unsigned long long>(cmb.null_messages),
              static_cast<double>(cmb.null_messages) /
                  static_cast<double>(cmb.events_processed ? cmb.events_processed : 1),
              static_cast<unsigned long long>(cmb.tasks_spawned));
  std::printf("\nboth engines agreed on every per-packet record.\n");
  return 0;
}
