// Domain example 1 — hardware verification: simulate a Kogge-Stone adder
// (the paper's evaluation circuit) against random operand streams and check
// every final sum against integer arithmetic, comparing all engines.
//
//   $ ./adder_verification [--bits 32] [--vectors 20] [--workers 4]
#include <cstdio>
#include <vector>

#include "circuit/generators.hpp"
#include "des/engines.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

using namespace hjdes;

namespace {

std::uint64_t sum_from_outputs(const std::vector<bool>& outs, int bits) {
  std::uint64_t v = 0;
  for (int i = 0; i <= bits; ++i) {
    v |= static_cast<std::uint64_t>(outs[static_cast<std::size_t>(i)]) << i;
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int bits = static_cast<int>(cli.get_int("bits", 32));
  const int vectors = static_cast<int>(cli.get_int("vectors", 20));
  const int workers = static_cast<int>(cli.get_int("workers", 4));
  if (bits < 1 || bits > 64) {
    std::printf("--bits must be in [1, 64]\n");
    return 2;
  }

  circuit::Netlist adder = circuit::kogge_stone_adder(bits);
  std::printf("Kogge-Stone %d-bit adder: %zu nodes, %zu edges, depth %zu\n",
              bits, adder.node_count(), adder.edge_count(), adder.depth());

  Xoshiro256 rng(2718);
  const std::uint64_t mask = bits == 64 ? ~0ULL : ((1ULL << bits) - 1);
  int failures = 0;

  for (int trial = 0; trial < vectors; ++trial) {
    const std::uint64_t a = rng() & mask;
    const std::uint64_t b = rng() & mask;
    const bool cin = rng.coin();

    std::vector<bool> in;
    for (int i = 0; i < bits; ++i) in.push_back((a >> i) & 1);
    for (int i = 0; i < bits; ++i) in.push_back((b >> i) & 1);
    in.push_back(cin);
    des::SimInput input(adder, circuit::single_vector_stimulus(adder, in));

    des::SimResult seq = des::run_sequential(input);
    des::HjEngineConfig cfg;
    cfg.workers = workers;
    des::SimResult par = des::run_hj(input, cfg);

    const std::uint64_t expect = (a + b + (cin ? 1u : 0u));
    const std::uint64_t got = sum_from_outputs(par.final_output_values(), bits);
    const bool engines_agree = des::same_behaviour(seq, par);
    const bool arithmetic_ok =
        bits == 64 ? (got == expect)  // cout covers the 65th bit separately
                   : (got == (expect & ((mask << 1) | 1)));
    if (!engines_agree || !arithmetic_ok) {
      std::printf("FAIL %016llx + %016llx + %d -> got %llx expect %llx%s\n",
                  static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b), cin,
                  static_cast<unsigned long long>(got),
                  static_cast<unsigned long long>(expect),
                  engines_agree ? "" : " (engine mismatch!)");
      ++failures;
    }
  }

  // Throughput comparison on a longer stream.
  circuit::Stimulus stream = circuit::random_stimulus(adder, 50, 100, 99);
  des::SimInput input(adder, stream);
  Timer t;
  des::SimResult seq = des::run_sequential(input);
  double seq_s = t.seconds();
  t.reset();
  des::HjEngineConfig cfg;
  cfg.workers = workers;
  des::SimResult par = des::run_hj(input, cfg);
  double par_s = t.seconds();
  t.reset();
  des::GaloisEngineConfig gcfg;
  gcfg.threads = workers;
  des::run_galois(input, gcfg);
  double gal_s = t.seconds();

  std::printf(
      "\n%d/%d vectors verified. Stream of %zu initial events -> %llu total "
      "events.\n",
      vectors - failures, vectors, stream.total_events(),
      static_cast<unsigned long long>(seq.events_processed));
  std::printf("sequential %.1f ms | hj(%d workers) %.1f ms | galois %.1f ms\n",
              seq_s * 1e3, workers, par_s * 1e3, gal_s * 1e3);
  std::printf("parallel == sequential: %s\n",
              des::same_behaviour(seq, par) ? "yes" : "NO");
  return failures == 0 ? 0 : 1;
}
