// Quickstart: build a tiny circuit by hand (the paper's Figure 3 style),
// describe a stimulus, run the sequential and parallel engines, and print
// the resulting waveforms.
//
//   $ ./quickstart [--workers N]
#include <cstdio>

#include "circuit/dot_export.hpp"
#include "circuit/netlist.hpp"
#include "des/engines.hpp"
#include "support/cli.hpp"

using namespace hjdes;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int workers = static_cast<int>(cli.get_int("workers", 4));

  // 1. Build a circuit: out = NOT(a AND b), side = a XOR b.
  circuit::NetlistBuilder nb;
  circuit::NodeId a = nb.add_input("a");
  circuit::NodeId b = nb.add_input("b");
  circuit::NodeId g_and = nb.add_gate(circuit::GateKind::And, a, b);
  circuit::NodeId g_not = nb.add_gate(circuit::GateKind::Not, g_and);
  circuit::NodeId g_xor = nb.add_gate(circuit::GateKind::Xor, a, b);
  nb.add_output(g_not, "nand_out");
  nb.add_output(g_xor, "xor_out");
  circuit::Netlist netlist = nb.build();

  std::printf("circuit: %zu nodes, %zu edges, depth %zu\n",
              netlist.node_count(), netlist.edge_count(), netlist.depth());
  std::printf("%s\n", circuit::to_dot(netlist, "quickstart").c_str());

  // 2. Describe the initial events (signal changes at each circuit input).
  circuit::Stimulus stimulus;
  stimulus.initial.resize(2);
  stimulus.initial[0] = {{0, true}, {10, false}, {20, true}};   // input a
  stimulus.initial[1] = {{0, false}, {15, true}};               // input b
  des::SimInput input(netlist, stimulus);

  // 3. Run the reference sequential engine (paper Algorithm 1).
  des::SimResult seq = des::run_sequential(input);

  // 4. Run the parallel HJlib-style engine (paper Algorithm 2 + §4.5).
  des::HjEngineConfig cfg;
  cfg.workers = workers;
  des::SimResult par = des::run_hj(input, cfg);

  // 5. Parallel output is bit-identical to sequential output.
  if (!des::same_behaviour(seq, par)) {
    std::printf("MISMATCH: %s\n", des::diff_behaviour(seq, par).c_str());
    return 1;
  }

  std::printf("events processed: %llu (+%llu NULL messages), tasks spawned: "
              "%llu\n\n",
              static_cast<unsigned long long>(par.events_processed),
              static_cast<unsigned long long>(par.null_messages),
              static_cast<unsigned long long>(par.tasks_spawned));
  for (std::size_t i = 0; i < netlist.outputs().size(); ++i) {
    std::printf("waveform %-8s :",
                netlist.name(netlist.outputs()[i]).c_str());
    for (const des::OutputRecord& r : par.waveforms[i]) {
      std::printf(" %lld:%d", static_cast<long long>(r.time), r.value);
    }
    std::printf("\n");
  }
  std::printf("\n(sequential and %d-worker parallel runs matched exactly)\n",
              workers);
  return 0;
}
