// Domain example 3 — what waveform-level DES gives you that functional
// evaluation cannot: hazard (glitch) detection. A static-1 hazard circuit
// (out = (a AND b) OR (NOT a AND c)) momentarily drops to 0 when `a`
// switches while b = c = 1, because the two product terms race through paths
// of different delay. The simulator exposes the transient pulse in the
// output waveform; zero-delay evaluation would call the circuit glitch-free.
//
//   $ ./glitch_hunter [--workers 4]
#include <cstdio>

#include "circuit/netlist.hpp"
#include "des/engines.hpp"
#include "support/cli.hpp"

using namespace hjdes;

namespace {

/// Count transitions (value changes) in a waveform; a glitch is any pair of
/// transitions closer together than `pulse_width`.
int count_glitches(const std::vector<des::OutputRecord>& wave,
                   des::Time pulse_width) {
  int glitches = 0;
  for (std::size_t i = 2; i < wave.size(); ++i) {
    const bool changed_now = wave[i].value != wave[i - 1].value;
    const bool changed_prev = wave[i - 1].value != wave[i - 2].value;
    if (changed_now && changed_prev &&
        wave[i].time - wave[i - 1].time <= pulse_width) {
      ++glitches;
      std::printf("  glitch: output pulsed to %d for %lld time units at "
                  "t=%lld\n",
                  wave[i - 1].value,
                  static_cast<long long>(wave[i].time - wave[i - 1].time),
                  static_cast<long long>(wave[i - 1].time));
    }
  }
  return glitches;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int workers = static_cast<int>(cli.get_int("workers", 4));

  // out = (a AND b) OR (NOT a AND c): logically constant 1 while b=c=1,
  // but the NOT path is one gate longer than the direct path.
  circuit::NetlistBuilder nb;
  circuit::NodeId a = nb.add_input("a");
  circuit::NodeId b = nb.add_input("b");
  circuit::NodeId c = nb.add_input("c");
  circuit::NodeId na = nb.add_gate(circuit::GateKind::Not, a);
  circuit::NodeId t1 = nb.add_gate(circuit::GateKind::And, a, b);
  circuit::NodeId t2 = nb.add_gate(circuit::GateKind::And, na, c);
  circuit::NodeId out = nb.add_gate(circuit::GateKind::Or, t1, t2);
  nb.add_output(out, "out");
  circuit::Netlist netlist = nb.build();

  // Hold b = c = 1; toggle a repeatedly. Every 1 -> 0 transition of `a`
  // opens a window where t1 has already fallen but t2 has not yet risen.
  circuit::Stimulus stim;
  stim.initial.resize(3);
  for (int k = 0; k < 8; ++k) {
    stim.initial[0].push_back({k * 50, k % 2 == 0});  // a toggles
  }
  stim.initial[1] = {{0, true}};
  stim.initial[2] = {{0, true}};
  des::SimInput input(netlist, stim);

  des::HjEngineConfig cfg;
  cfg.workers = workers;
  des::SimResult r = des::run_hj(input, cfg);
  des::SimResult seq = des::run_sequential(input);
  if (!des::same_behaviour(seq, r)) {
    std::printf("engine mismatch: %s\n", des::diff_behaviour(seq, r).c_str());
    return 1;
  }

  std::printf("out waveform:");
  for (const des::OutputRecord& rec : r.waveforms[0]) {
    std::printf(" %lld:%d", static_cast<long long>(rec.time), rec.value);
  }
  std::printf("\n\nhazard scan (pulse width <= 3):\n");
  int glitches = count_glitches(r.waveforms[0], 3);
  std::printf("\n%d static-1 hazard pulse(s) found — invisible to zero-delay "
              "functional evaluation, visible to the DES.\n",
              glitches);
  return glitches > 0 ? 0 : 1;  // the demo is supposed to find them
}
