// A tour of the hj runtime itself (paper §3), independent of the DES: task
// spawning with async/finish, futures, isolated, the TRYLOCK /
// RELEASEALLLOCKS extension, and actors.
//
//   $ ./runtime_tour [--workers 4]
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "hj/actor.hpp"
#include "hj/future.hpp"
#include "hj/isolated.hpp"
#include "hj/locks.hpp"
#include "hj/runtime.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"

using namespace hjdes;

namespace {

long fib_seq(int n) { return n < 2 ? n : fib_seq(n - 1) + fib_seq(n - 2); }

/// Divide-and-conquer fib with async/finish (granularity-cut at 18).
void fib_par(int n, std::atomic<long>& acc) {
  if (n < 18) {
    acc.fetch_add(fib_seq(n), std::memory_order_relaxed);
    return;
  }
  hj::async([n, &acc] { fib_par(n - 1, acc); });
  fib_par(n - 2, acc);
}

class Greeter final : public hj::Actor<std::string> {
 public:
  std::atomic<int> greetings{0};

 protected:
  void process(std::string who) override {
    std::printf("  actor says: hello, %s\n", who.c_str());
    greetings.fetch_add(1);
  }
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int workers = static_cast<int>(cli.get_int("workers", 4));
  hj::Runtime rt(workers);
  std::printf("runtime with %d workers\n\n", rt.workers());

  // 1. async/finish: the paper's Figure 2 model.
  std::printf("[1] async/finish — fib(30) with work stealing\n");
  Timer t;
  std::atomic<long> fib{0};
  rt.run([&fib] { fib_par(30, fib); });
  std::printf("  fib(30) = %ld in %.1f ms\n\n", fib.load(), t.millis());

  // 2. Futures.
  std::printf("[2] futures\n");
  rt.run([] {
    auto area = hj::async_future<double>([] { return 3.14159 * 10 * 10; });
    auto perimeter = hj::async_future<double>([] { return 2 * 3.14159 * 10; });
    std::printf("  circle r=10: area %.1f, perimeter %.1f\n\n", area.get(),
                perimeter.get());
  });

  // 3. isolated: weak isolation (paper §3.2).
  std::printf("[3] isolated — 10k concurrent increments\n");
  long counter = 0;
  rt.run([&counter] {
    for (int i = 0; i < 10000; ++i) {
      hj::async([&counter] { hj::isolated_on([&counter] { ++counter; }, &counter); });
    }
  });
  std::printf("  counter = %ld (expected 10000)\n\n", counter);

  // 4. The paper's lock extension: TRYLOCK / RELEASEALLLOCKS (§3.2).
  std::printf("[4] try_lock/release_all_locks — bank transfers, no deadlock\n");
  struct Account {
    hj::HjLock lock;
    long balance = 1000;
  };
  std::vector<Account> bank(8);
  std::atomic<long> retries{0};
  rt.run([&bank, &retries] {
    for (int i = 0; i < 4000; ++i) {
      hj::async([&bank, &retries, i] {
        auto& from = bank[static_cast<std::size_t>(i) % 8];
        auto& to = bank[static_cast<std::size_t>(i * 5 + 1) % 8];
        if (&from == &to) return;
        for (;;) {
          // Cautious pattern from Algorithm 2: take both or none.
          if (hj::try_lock(from.lock)) {
            if (hj::try_lock(to.lock)) {
              from.balance -= 1;
              to.balance += 1;
              hj::release_all_locks();
              return;
            }
            hj::release_all_locks();
          }
          retries.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();  // let the conflicting holder finish
        }
      });
    }
  });
  long total = 0;
  for (auto& acct : bank) total += acct.balance;
  std::printf("  total balance %ld (expected 8000), try_lock retries %ld\n\n",
              total, retries.load());

  // 5. Actors (paper §6 future work).
  std::printf("[5] actors\n");
  Greeter greeter;
  rt.run([&greeter] {
    greeter.send("habanero");
    greeter.send("galois");
    greeter.send("chandy & misra");
  });
  std::printf("  %d greetings processed\n\n", greeter.greetings.load());

  hj::RuntimeStats stats = rt.stats();
  std::printf("runtime totals: %llu tasks executed, %llu steals\n",
              static_cast<unsigned long long>(stats.tasks_executed),
              static_cast<unsigned long long>(stats.steals));
  return counter == 10000 && total == 8000 ? 0 : 1;
}
