// hjdes_sim — command-line discrete-event simulator over the hjdes engines.
//
//   hjdes_sim --circuit <file|gen:NAME> [--stimulus <file>]
//             [--random-vectors N --interval T --seed S]
//             [--engine NAME] [shared RunConfig flags, see usage]
//             [--vcd out.vcd] [--dot out.dot] [--profile] [--verify]
//             [--trace out.json] [--metrics-json out.json] [--check]
//   hjdes_sim --model phold --model-params lps=512,pop=8 [--engine NAME]
//             [--profile] [--verify] [--seed S]
//   hjdes_sim --list-models
//
// --model selects a workload from the model registry (des/model_registry.hpp)
// and runs it through the engine's generic logical-process entry point; see
// docs/WORKLOADS.md. Circuit-only flags (--vcd/--dot/--lanes/--explore/
// --replay/--stimulus) are rejected on non-circuit models.
//
// Engine names come from the des engine registry (des::engines()). The
// shared runtime knobs (--workers/--parts/--pin/--batch/...) are mapped and
// validated against the selected engine's capability flags by
// des::run_config_from_cli: knobs an engine ignores draw a warning, invalid
// combinations abort before the run. With --engine=partitioned, --dot colors
// nodes by partition and marks cut edges.
//
// Circuit sources:
//   --circuit path/to/file.netlist    text format (see circuit/netlist_io.hpp)
//   --circuit gen:ks64                generated Kogge-Stone adder (ks<bits>)
//   --circuit gen:mul12               generated tree multiplier (mul<bits>)
//   --circuit gen:ripple16            generated ripple-carry adder
//
// Stimulus file format: one "INPUT_INDEX TIME VALUE" triple per line,
// '#' comments; per-input times must be non-decreasing.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "circuit/dot_export.hpp"
#include "des/lp_engines.hpp"
#include "circuit/generators.hpp"
#include "circuit/netlist_io.hpp"
#include "des/engines.hpp"
#include "des/model_registry.hpp"
#include "des/packed_engine.hpp"
#include "des/vcd_export.hpp"
#include "part/partitioner.hpp"
#include "serve/trial_scheduler.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"
#include "explore_common.hpp"
#include "tool_common.hpp"

using namespace hjdes;

namespace {

const FlagTable& sim_flags() {
  static const FlagTable table = [] {
    FlagTable t{
        {"circuit", "SPEC", "netlist file or gen:NAME (required)"},
        {"stimulus", "FILE", "INPUT_INDEX TIME VALUE triples"},
        {"random-vectors", "N", "random stimulus vectors (default 4)"},
        {"interval", "T", "random stimulus spacing (default 100)"},
        {"seed", "S", "random stimulus seed (default 1)"},
        {"engine", "NAME", "engine to run (default hj)"},
        {"lanes", "N", "fan a random stimulus out to N seeds (seed..seed+N-1)"
                       " and retire them in one 64-lane packed pass"},
        {"experiment", "FILE", "run a serve job spec (JSON) through the "
                               "trial scheduler; see docs/SERVING.md"},
        {"serve-workers", "N", "worker threads for --experiment (0 = auto)"},
        {"vcd", "FILE", "write the waveforms as VCD"},
        {"dot", "FILE", "write the netlist as DOT (colored by partition)"},
        {"profile", "", "print the available-parallelism profile"},
        {"verify", "", "cross-check against the sequential engine"},
        {"explore", "N", "run N seeded schedules with the hjverify oracles "
                         "armed; save + report the first violating one"},
        {"list-models", "", "list the registered --model workloads and exit"},
    };
    t.add_all(tool::explore_flags());
    t.add_all(des::run_config_flags());
    t.add_all(tool::common_flags());
    return t;
  }();
  return table;
}

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s --circuit <file|gen:NAME> [options]\n"
               "       %s --model <%s> [--model-params K=V,...] [options]\n%s",
               prog, prog, des::model_list().c_str(),
               sim_flags().usage().c_str());
  std::fprintf(stderr, "  engines (--engine %s):\n",
               des::engine_list().c_str());
  for (const des::EngineInfo& e : des::engines()) {
    std::fprintf(stderr, "    %-12s %.*s\n", std::string(e.name).c_str(),
                 static_cast<int>(e.summary.size()), e.summary.data());
  }
  return 2;
}

circuit::Netlist load_circuit(const std::string& spec) {
  if (spec.rfind("gen:", 0) == 0) {
    circuit::Netlist netlist;
    HJDES_CHECK(circuit::make_generated(spec.substr(4), &netlist),
                "unknown generator (ks<bits>, mul<bits>, ripple<bits>)");
    return netlist;
  }
  std::ifstream in(spec);
  HJDES_CHECK(in.good(), "cannot open circuit file");
  std::ostringstream buf;
  buf << in.rdbuf();
  return circuit::parse_netlist(buf.str());
}

circuit::Stimulus load_stimulus(const std::string& path,
                                const circuit::Netlist& netlist) {
  std::ifstream in(path);
  HJDES_CHECK(in.good(), "cannot open stimulus file");
  circuit::Stimulus s;
  s.initial.resize(netlist.inputs().size());
  std::string line;
  while (std::getline(in, line)) {
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::size_t input_index;
    std::int64_t time;
    int value;
    if (!(ls >> input_index)) continue;  // blank
    HJDES_CHECK(static_cast<bool>(ls >> time >> value),
                "stimulus line needs: INPUT_INDEX TIME VALUE");
    HJDES_CHECK(input_index < s.initial.size(),
                "stimulus input index out of range");
    s.initial[input_index].push_back(
        circuit::SignalChange{time, value != 0});
  }
  return s;
}

/// --experiment FILE: run one serve job spec through the TrialScheduler and
/// print its result line — the one-shot, no-daemon face of hjdes_serve.
int run_experiment(const Cli& cli) {
  const std::string path = cli.get("experiment", "");
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "error: cannot open experiment spec %s\n",
                 path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  serve::SchedulerConfig config;
  config.workers = static_cast<int>(cli.get_int("serve-workers", 0));
  serve::JobResult result;
  {
    serve::TrialScheduler scheduler(
        config, [&result](const serve::JobResult& r) { result = r; });
    std::printf("experiment: %s on %d workers\n", path.c_str(),
                scheduler.workers());
    std::string id;
    const serve::Admission admission =
        scheduler.submit_line(buf.str(), &id);
    if (!admission.accepted) {
      result = serve::make_rejected(id, admission.reason);
    }
    scheduler.drain();
  }
  std::printf("%s\n", serve::job_result_json(result).c_str());
  tool::fault_epilogue();
  if (!tool::dump_metrics_if_requested(cli)) return 1;
  return result.status == serve::JobStatus::kRejected ? 1 : 0;
}

/// --model=<non-circuit>: build the workload from the model registry and run
/// it through the engine's generic logical-process entry point.
int run_model_workload(const Cli& cli, const des::EngineInfo& engine,
                       const std::string& engine_name,
                       const des::RunConfig& config) {
  // Tool flags that only mean something for a circuit netlist.
  static constexpr const char* kCircuitOnly[] = {
      "circuit", "stimulus", "random-vectors", "interval", "lanes",
      "vcd",     "dot",      "explore",        "replay"};
  for (const char* flag : kCircuitOnly) {
    if (cli.has(flag)) {
      std::fprintf(stderr,
                   "error: --%s applies to circuit simulation only and "
                   "cannot be used with --model=%s\n",
                   flag, config.model.c_str());
      return 2;
    }
  }
  if (engine.run_model == nullptr) {
    // validate_run_config already rejects this; belt and braces.
    std::fprintf(stderr, "error: engine '%s' cannot run --model=%s\n",
                 engine_name.c_str(), config.model.c_str());
    return 2;
  }

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  // An explicit --seed that disagrees with a pinned seed= in --model-params
  // is a named error (kSeedConflictError), not a silent overwrite.
  const bool seed_explicit = cli.has("seed");
  auto fresh_model = [&](std::string* error) {
    return des::make_model(config.model, config.model_params, seed, error,
                           seed_explicit);
  };
  std::string error;
  std::unique_ptr<des::Model> model = fresh_model(&error);
  if (model == nullptr) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  std::printf("model %s: %d LPs, min lookahead %lld\n",
              std::string(model->name()).c_str(), model->lp_count(),
              static_cast<long long>(des::model_min_lookahead(*model)));

  if (cli.has("profile")) {
    // Running an engine mutates LP state, so the profile gets its own
    // instance (identical by the determinism contract).
    std::unique_ptr<des::Model> probe = fresh_model(&error);
    des::ParallelismProfile p = des::profile_model_parallelism(*probe);
    std::printf("available parallelism: peak %llu, average %.1f over %zu "
                "rounds\n",
                static_cast<unsigned long long>(p.peak_parallelism()),
                p.average_parallelism(), p.rounds.size());
  }

  tool::start_trace_if_requested(cli);
  auto watchdog = tool::arm_fault_harness(config.fault_seed,
                                          config.fault_rate_ppm,
                                          config.watchdog_ms);
  Timer t;
  const des::ModelResult result = engine.run_model(*model, config);
  const double secs = t.seconds();
  watchdog.reset();  // disarm before the single-threaded epilogue
  tool::fault_epilogue();
  if (!tool::finish_trace_if_requested(cli)) return 1;

  std::printf("engine %s (%d workers, pin %s): %.2f ms, %llu events over "
              "%llu rounds, checksum %016llx\n",
              engine_name.c_str(), config.workers,
              std::string(support::pin_policy_name(config.pin)).c_str(),
              secs * 1e3,
              static_cast<unsigned long long>(result.events_processed),
              static_cast<unsigned long long>(result.rounds),
              static_cast<unsigned long long>(result.checksum));

  if (cli.has("verify") && engine_name != "seq") {
    std::unique_ptr<des::Model> ref_model = fresh_model(&error);
    const des::ModelResult ref = des::run_model_sequential(*ref_model);
    if (ref.checksum == result.checksum &&
        ref.events_processed == result.events_processed) {
      std::printf("verify: OK (checksum identical to sequential)\n");
    } else {
      std::printf("verify: MISMATCH — sequential checksum %016llx over %llu "
                  "events\n",
                  static_cast<unsigned long long>(ref.checksum),
                  static_cast<unsigned long long>(ref.events_processed));
      return 1;
    }
  }

  const std::uint64_t check_violations = tool::check_report_if_requested(cli);
  if (!tool::dump_metrics_if_requested(cli)) return 1;
  return check_violations != 0 ? 1 : 0;
}

int list_models() {
  std::printf("models (--model NAME --model-params K=V,...):\n");
  for (const des::ModelInfo& m : des::models()) {
    std::printf("  %-10s %.*s\n             params: %.*s\n",
                std::string(m.name).c_str(),
                static_cast<int>(m.summary.size()), m.summary.data(),
                static_cast<int>(m.params_help.size()), m.params_help.data());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  if (cli.has("list-models")) return list_models();
  if (cli.has("experiment")) {
    tool::warn_unknown_flags(cli, sim_flags());
    auto watchdog = tool::arm_fault_harness(cli);
    return run_experiment(cli);
  }
  if (!cli.has("circuit") && !cli.has("model")) return usage(argv[0]);
  tool::warn_unknown_flags(cli, sim_flags());

  const std::string engine_name = cli.get("engine", "hj");
  const des::EngineInfo* engine = des::find_engine(engine_name);
  if (engine == nullptr) return usage(argv[0]);

  des::RunValidation validation;
  des::RunConfig config = des::run_config_from_cli(cli, engine->caps,
                                                   engine_name, &validation);
  for (const std::string& w : validation.warnings) {
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  }
  if (!validation.ok()) {
    for (const std::string& e : validation.errors) {
      std::fprintf(stderr, "error: %s\n", e.c_str());
    }
    return 2;
  }

  // Non-circuit workloads run through the generic LP interface and skip the
  // whole netlist path.
  if (config.model != "circuit") {
    return run_model_workload(cli, *engine, engine_name, config);
  }
  if (!cli.has("circuit")) return usage(argv[0]);

  circuit::Netlist netlist = load_circuit(cli.get("circuit", ""));
  std::printf("circuit: %zu nodes, %zu edges, %zu inputs, %zu outputs, "
              "depth %zu\n",
              netlist.node_count(), netlist.edge_count(),
              netlist.inputs().size(), netlist.outputs().size(),
              netlist.depth());

  // With the partitioned engine, compute the assignment up front so the DOT
  // export can color it and the run reuses the identical shards.
  part::Partition partition;
  if (engine_name == "partitioned") {
    partition = part::make_partition(
        netlist, config.parts > 0 ? config.parts : config.workers,
        config.partitioner);
    config.partition = &partition;
    const part::PartitionStats stats =
        part::partition_stats(netlist, partition);
    std::printf("partition: %d parts (%s), %zu/%zu cut edges (%.1f%%), "
                "imbalance %.1f%%\n",
                partition.parts,
                std::string(
                    part::partitioner_name(config.partitioner)).c_str(),
                stats.cut_edges, stats.total_edges, stats.cut_ratio() * 100.0,
                stats.imbalance() * 100.0);
  }

  if (cli.has("dot")) {
    std::ofstream out(cli.get("dot", ""));
    out << circuit::to_dot(netlist, "hjdes_sim", partition.part_of);
    std::printf("wrote DOT to %s\n", cli.get("dot", "").c_str());
  }

  circuit::Stimulus stimulus;
  if (cli.has("stimulus")) {
    stimulus = load_stimulus(cli.get("stimulus", ""), netlist);
  } else {
    stimulus = circuit::random_stimulus(
        netlist, static_cast<std::size_t>(cli.get_int("random-vectors", 4)),
        cli.get_int("interval", 100),
        static_cast<std::uint64_t>(cli.get_int("seed", 1)));
  }
  des::SimInput input(netlist, stimulus);
  std::printf("stimulus: %zu initial events\n", input.total_initial_events());

  // --explore=N / --replay=FILE: deterministic schedule exploration with the
  // hjverify oracles armed (tools/explore_common.hpp).
  if (cli.has("explore") || cli.has("replay")) {
    tool::ExploreOptions opt;
    std::string error;
    if (!tool::explore_options_from_cli(cli, &opt, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    if (cli.has("replay")) {
      return tool::replay_circuit(input, *engine, config,
                                  cli.get("replay", ""));
    }
    opt.schedules = static_cast<int>(cli.get_int("explore", 64));
    if (opt.schedules < 1) {
      std::fprintf(stderr, "error: --explore needs at least 1 schedule\n");
      return 2;
    }
    return tool::explore_circuit(input, *engine, config, opt,
                                 engine_name.c_str());
  }

  // --lanes N: one bit-parallel pass retiring N stimulus lanes at once.
  // Lane 0 is the stimulus above (file or random); lanes 1..N-1 re-seed the
  // random generator, which keeps every timeline identical — the packed
  // precondition. A file stimulus whose timeline differs from the random
  // grid is reported as a packing error, not an abort.
  if (cli.has("lanes")) {
    const int lanes = static_cast<int>(cli.get_int("lanes", 0));
    if (lanes < 1 || lanes > des::kPackedLanes) {
      std::fprintf(stderr, "error: --lanes must be 1..%d, got %d\n",
                   des::kPackedLanes, lanes);
      return 2;
    }
    std::vector<circuit::Stimulus> fan;
    fan.reserve(static_cast<std::size_t>(lanes));
    fan.push_back(stimulus);
    for (int L = 1; L < lanes; ++L) {
      fan.push_back(circuit::random_stimulus(
          netlist, static_cast<std::size_t>(cli.get_int("random-vectors", 4)),
          cli.get_int("interval", 100),
          static_cast<std::uint64_t>(cli.get_int("seed", 1)) +
              static_cast<std::uint64_t>(L)));
    }
    std::vector<const circuit::Stimulus*> ptrs;
    for (const circuit::Stimulus& s : fan) ptrs.push_back(&s);
    const std::string lane_error = des::packed_lane_error(netlist, ptrs);
    if (!lane_error.empty()) {
      std::fprintf(stderr, "error: cannot pack %d lanes: %s\n", lanes,
                   lane_error.c_str());
      return 1;
    }
    Timer pt;
    const des::PackedResult packed = des::run_packed(netlist, ptrs);
    const double packed_ms = pt.millis();
    std::uint64_t lane_events = 0;
    for (const des::SimResult& r : packed.lanes) {
      lane_events += r.events_processed;
    }
    std::printf("packed %d lanes: %.2f ms, %llu word-events -> %llu lane "
                "events retired\n",
                lanes, packed_ms,
                static_cast<unsigned long long>(packed.word_events),
                static_cast<unsigned long long>(lane_events));
    if (cli.has("verify")) {
      for (int L = 0; L < lanes; ++L) {
        const des::SimInput lane_input(netlist, fan[static_cast<std::size_t>(L)]);
        const des::SimResult ref = des::run_sequential(lane_input);
        if (!des::same_behaviour(ref, packed.lanes[static_cast<std::size_t>(L)])) {
          std::printf("verify: MISMATCH on lane %d — %s\n", L,
                      des::diff_behaviour(
                          ref, packed.lanes[static_cast<std::size_t>(L)])
                          .c_str());
          return 1;
        }
      }
      std::printf("verify: OK (%d lanes bit-identical to sequential)\n",
                  lanes);
    }
    if (!tool::dump_metrics_if_requested(cli)) return 1;
    return 0;
  }

  if (cli.has("profile")) {
    des::ParallelismProfile p = des::profile_parallelism(input);
    std::printf("available parallelism: peak %llu, average %.1f over %zu "
                "steps\n",
                static_cast<unsigned long long>(p.peak_parallelism()),
                p.average_parallelism(), p.rounds.size());
  }

  tool::start_trace_if_requested(cli);
  auto watchdog = tool::arm_fault_harness(config.fault_seed,
                                          config.fault_rate_ppm,
                                          config.watchdog_ms);
  Timer t;
  des::SimResult result = engine->run(input, config);
  const double secs = t.seconds();
  watchdog.reset();  // disarm before the single-threaded epilogue
  tool::fault_epilogue();
  if (!tool::finish_trace_if_requested(cli)) return 1;

  std::printf("engine %s (%d workers, pin %s): %.2f ms, %llu events "
              "(+%llu NULLs)\n",
              engine_name.c_str(), config.workers,
              std::string(support::pin_policy_name(config.pin)).c_str(),
              secs * 1e3,
              static_cast<unsigned long long>(result.events_processed),
              static_cast<unsigned long long>(result.null_messages));
  if (result.tasks_spawned != 0) {
    std::printf("  tasks spawned %llu, lock failures %llu, spawn skips %llu\n",
                static_cast<unsigned long long>(result.tasks_spawned),
                static_cast<unsigned long long>(result.lock_failures),
                static_cast<unsigned long long>(result.spawn_skips));
  }
  if (result.rollbacks != 0 || result.speculative_events != 0) {
    std::printf("  speculative %llu, rollbacks %llu, anti-messages %llu\n",
                static_cast<unsigned long long>(result.speculative_events),
                static_cast<unsigned long long>(result.rollbacks),
                static_cast<unsigned long long>(result.anti_messages));
  }

  if (cli.has("verify") && engine_name != "seq") {
    des::SimResult ref = des::run_sequential(input);
    if (des::same_behaviour(ref, result)) {
      std::printf("verify: OK (bit-identical to sequential)\n");
    } else {
      std::printf("verify: MISMATCH — %s\n",
                  des::diff_behaviour(ref, result).c_str());
      return 1;
    }
  }

  // --check runs before --metrics-json so cycle findings land in the
  // check.* counters of the JSON dump.
  const std::uint64_t check_violations = tool::check_report_if_requested(cli);
  if (!tool::dump_metrics_if_requested(cli)) return 1;

  if (cli.has("vcd")) {
    std::ofstream out(cli.get("vcd", ""));
    out << des::to_vcd(input, result);
    std::printf("wrote VCD to %s\n", cli.get("vcd", "").c_str());
  }
  return check_violations != 0 ? 1 : 0;
}
