#pragma once
// Shared plumbing for the CLI tools (hjdes_sim, hjdes_netsim): the
// --trace / --metrics-json / --check epilogues and the unknown-flag
// warning, previously duplicated in both mains. Each tool declares its
// flags in a FlagTable (support/cli.hpp) and calls these helpers in the
// same order: trace bracketing around the run, then check (so cycle
// findings land in the metrics dump), then metrics.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "check/check.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/cli.hpp"

namespace hjdes::tool {

/// The epilogue flags every tool understands.
inline const FlagTable& common_flags() {
  static const FlagTable table{
      {"trace", "FILE", "Chrome trace-event task timeline"},
      {"metrics-json", "FILE", "dump the metrics registry"},
      {"check", "", "report hjcheck race/lock-order findings; exit 1 on "
                    "violations (needs -DHJDES_CHECK=ON)"},
  };
  return table;
}

/// Warn (stderr) about command-line flags the tool never reads. Returns the
/// number of unknown flags, so callers can escalate if they want to.
inline std::size_t warn_unknown_flags(const Cli& cli, const FlagTable& table) {
  const auto unknown = table.unknown_flags(cli);
  for (const std::string& name : unknown) {
    std::fprintf(stderr, "warning: unknown flag --%s (ignored)\n",
                 name.c_str());
  }
  return unknown.size();
}

inline void start_trace_if_requested(const Cli& cli) {
  if (cli.has("trace")) obs::start_tracing();
}

/// Stop tracing and write the Chrome trace file. False on a write error.
inline bool finish_trace_if_requested(const Cli& cli) {
  if (!cli.has("trace")) return true;
  obs::stop_tracing();
  const std::string path = cli.get("trace", "");
  std::ofstream out(path);
  const std::size_t spans = obs::write_chrome_trace(out);
  if (!out) {
    std::fprintf(stderr, "error: cannot write trace to %s\n", path.c_str());
    return false;
  }
  std::printf("wrote Chrome trace (%zu events, %llu dropped) to %s\n", spans,
              static_cast<unsigned long long>(obs::trace_dropped_events()),
              path.c_str());
  return true;
}

/// Run the hjcheck report when --check was passed; returns the violation
/// count (0 also when hjcheck is not compiled in).
inline std::uint64_t check_report_if_requested(const Cli& cli) {
  if (!cli.has("check")) return 0;
  if (!check::compiled_in()) {
    std::printf("check: hjcheck not compiled in "
                "(reconfigure with -DHJDES_CHECK=ON)\n");
    return 0;
  }
  check::lockorder::verify_no_cycles();
  return check::print_report(stdout);
}

/// Install the fault plan from --fault-rate/--fault-seed (no-op at rate 0)
/// and return a watchdog for --watchdog-ms (inert at 0). Keep the returned
/// watchdog alive for the duration of the simulated run. Tools without a
/// RunConfig (hjdes_netsim) read the flags straight from the Cli via the
/// defaults here; tools with one pass the validated values instead.
inline std::unique_ptr<fault::ScopedWatchdog> arm_fault_harness(
    std::uint64_t fault_seed, int fault_rate_ppm, int watchdog_ms) {
  if (fault_rate_ppm > 0) {
    fault::configure(fault_seed,
                     static_cast<std::uint32_t>(fault_rate_ppm));
  }
  return std::make_unique<fault::ScopedWatchdog>(watchdog_ms);
}

inline std::unique_ptr<fault::ScopedWatchdog> arm_fault_harness(
    const Cli& cli) {
  return arm_fault_harness(
      static_cast<std::uint64_t>(cli.get_int("fault-seed", 1)),
      static_cast<int>(cli.get_int("fault-rate", 0)),
      static_cast<int>(cli.get_int("watchdog-ms", 0)));
}

/// Print the one-line fault summary (stdout) when anything was injected, and
/// mirror the tallies into the metrics registry so --metrics-json sees them.
inline void fault_epilogue() {
  fault::publish_metrics();
  const std::string line = fault::summary();
  if (!line.empty()) std::printf("%s\n", line.c_str());
}

/// Dump the metrics registry when --metrics-json was passed. False on a
/// write error.
inline bool dump_metrics_if_requested(const Cli& cli) {
  if (!cli.has("metrics-json")) return true;
  const std::string path = cli.get("metrics-json", "");
  std::ofstream out(path);
  obs::metrics().write_json(out);
  if (!out) {
    std::fprintf(stderr, "error: cannot write metrics JSON to %s\n",
                 path.c_str());
    return false;
  }
  // stderr: hjdes_serve streams machine-readable results on stdout.
  std::fprintf(stderr, "wrote metrics JSON to %s\n", path.c_str());
  return true;
}

}  // namespace hjdes::tool
