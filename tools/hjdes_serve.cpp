// hjdes_serve — experiment-throughput daemon over the serve TrialScheduler
// (docs/SERVING.md).
//
//   hjdes_serve [--workers N] [--pin none|compact|scatter]
//               [--max-jobs N] [--max-trials N] [--no-pack] [--keep-trials]
//               [--socket PATH] [--fault-rate PPM --fault-seed S]
//               [--watchdog-ms MS] [--metrics-json FILE]
//
// Jobs arrive as line-delimited JSON objects (see serve/job_spec.hpp) on
// stdin, or on a Unix domain socket with --socket. Each accepted job streams
// back exactly one result line when its last trial retires; a rejected job
// bounces immediately with status "rejected" and a reason. The daemon never
// aborts on bad traffic — malformed JSON, unknown fields and over-cap jobs
// are all reject lines — and a wedged job degrades at its deadline instead
// of stalling the fleet, so the exit status is 0 whenever the daemon itself
// stayed healthy.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>

#include "serve/trial_scheduler.hpp"
#include "support/cli.hpp"
#include "tool_common.hpp"

#ifdef __unix__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace hjdes;

namespace {

const FlagTable& serve_flags() {
  static const FlagTable table = [] {
    FlagTable t{
        {"workers", "N", "scheduler worker threads (default 0 = auto)"},
        {"pin", "POLICY", "worker pinning: none|compact|scatter"},
        {"max-jobs", "N", "admission cap on jobs in flight (default 16)"},
        {"max-trials", "N", "admission cap on trials per job (default 65536)"},
        {"no-pack", "", "disable 64-lane packed replication routing"},
        {"keep-trials", "", "include per-trial outcomes in result lines"},
        {"socket", "PATH", "listen on a Unix domain socket instead of stdin"},
        {"fault-rate", "PPM", "fault injection rate (needs -DHJDES_FAULT=ON)"},
        {"fault-seed", "S", "fault injection seed"},
        {"watchdog-ms", "MS", "stall watchdog period (0 = off)"},
    };
    t.add_all(tool::common_flags());
    return t;
  }();
  return table;
}

/// Serializes result/reject lines onto one stream (results arrive from
/// worker threads).
class LineSink {
 public:
  virtual ~LineSink() = default;
  virtual void write_line(const std::string& line) = 0;
};

class StdoutSink : public LineSink {
 public:
  void write_line(const std::string& line) override {
    std::lock_guard<std::mutex> lock(mu_);
    std::fwrite(line.data(), 1, line.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }

 private:
  std::mutex mu_;
};

/// Feed one line-delimited job stream into the scheduler, writing reject
/// lines inline; accepted jobs report through the scheduler callback.
void submit_stream(serve::TrialScheduler& scheduler, std::istream& in,
                   LineSink& sink) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string id;
    const serve::Admission admission = scheduler.submit_line(line, &id);
    if (!admission.accepted) {
      sink.write_line(
          serve::job_result_json(serve::make_rejected(id, admission.reason)));
    }
  }
}

#ifdef __unix__
class FdSink : public LineSink {
 public:
  explicit FdSink(int fd) : fd_(fd) {}
  void write_line(const std::string& line) override {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = line;
    out += '\n';
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::write(fd_, out.data() + off, out.size() - off);
      if (n <= 0) break;  // client went away; results are droppable
      off += static_cast<std::size_t>(n);
    }
  }

 private:
  int fd_;
  std::mutex mu_;
};

int serve_socket(const serve::SchedulerConfig& config,
                 const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("hjdes_serve: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "hjdes_serve: socket path too long: %s\n",
                 path.c_str());
    ::close(listener);
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 8) != 0) {
    std::perror("hjdes_serve: bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "hjdes_serve: listening on %s\n", path.c_str());

  // One client at a time: read its jobs, stream its results back, drain
  // before the next accept so result lines never cross connections.
  for (;;) {
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) break;
    {
      FdSink sink(client);
      serve::TrialScheduler scheduler(
          config, [&sink](const serve::JobResult& r) {
            sink.write_line(serve::job_result_json(r));
          });
      // Pull the socket through stdio for line framing.
      FILE* stream = ::fdopen(::dup(client), "r");
      if (stream != nullptr) {
        char* buf = nullptr;
        std::size_t cap = 0;
        ssize_t len;
        while ((len = ::getline(&buf, &cap, stream)) > 0) {
          std::string line(buf, static_cast<std::size_t>(len));
          while (!line.empty() &&
                 (line.back() == '\n' || line.back() == '\r')) {
            line.pop_back();
          }
          if (line.empty()) continue;
          std::string id;
          const serve::Admission admission =
              scheduler.submit_line(line, &id);
          if (!admission.accepted) {
            sink.write_line(serve::job_result_json(
                serve::make_rejected(id, admission.reason)));
          }
        }
        std::free(buf);
        std::fclose(stream);
      }
      scheduler.drain();
    }
    ::close(client);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}
#endif  // __unix__

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  tool::warn_unknown_flags(cli, serve_flags());

  serve::SchedulerConfig config;
  config.workers = static_cast<int>(cli.get_int("workers", 0));
  config.max_queued_jobs =
      static_cast<std::size_t>(cli.get_int("max-jobs", 16));
  config.max_trials_per_job =
      static_cast<std::size_t>(cli.get_int("max-trials", 65536));
  config.pack = !cli.has("no-pack");
  config.keep_trials = cli.has("keep-trials");
  if (cli.has("pin") &&
      !support::parse_pin_policy(cli.get("pin", ""), &config.pin)) {
    std::fprintf(stderr, "error: unknown pin policy '%s'\n",
                 cli.get("pin", "").c_str());
    return 2;
  }

  auto watchdog = tool::arm_fault_harness(cli);

  int rc = 0;
  if (cli.has("socket")) {
#ifdef __unix__
    rc = serve_socket(config, cli.get("socket", ""));
#else
    std::fprintf(stderr, "error: --socket needs a Unix platform\n");
    return 2;
#endif
  } else {
    StdoutSink sink;
    serve::TrialScheduler scheduler(
        config, [&sink](const serve::JobResult& r) {
          sink.write_line(serve::job_result_json(r));
        });
    std::fprintf(stderr, "hjdes_serve: %d workers, reading jobs from stdin\n",
                 scheduler.workers());
    submit_stream(scheduler, std::cin, sink);
    scheduler.drain();
  }

  watchdog.reset();
  tool::fault_epilogue();
  if (!tool::dump_metrics_if_requested(cli)) return 1;
  return rc;
}
