// hjdes_explore — deterministic schedule exploration over the paper
// circuits.
//
//   hjdes_explore [--circuits LIST] [--engines LIST] [--schedules N]
//                 [--workers N] [--vectors N] [--interval T] [--seed S]
//                 [explore flags, see usage]
//
// For every (circuit, engine, strategy) combination this runs N seeded
// schedules with the hjverify protocol oracles armed (tools/
// explore_common.hpp): each run perturbs the engine's yield/flush/push
// decision points from a recorded per-thread decision stream, re-checks
// every invariant, and compares the result bit-for-bit against the
// sequential engine. The first violating schedule is saved as a trace file
// and the command to replay it bit-exactly is printed. Both strategies are
// swept by default: "walk" (uniform biased coin) and "pct" (per-thread
// priority perturbation — a few streams fire far more often than the rest).
//
// Defaults (2 circuits x 2 engines x 2 strategies x 16 schedules = 128
// checked runs) fit the CI explore-smoke budget; --circuits mul12
// --schedules 16 is the quick 64-run smoke.
#include <cstdio>
#include <string>
#include <vector>

#include "circuit/generators.hpp"
#include "circuit/stimulus.hpp"
#include "des/engines.hpp"
#include "support/cli.hpp"
#include "explore_common.hpp"
#include "tool_common.hpp"

using namespace hjdes;

namespace {

const FlagTable& explore_tool_flags() {
  static const FlagTable table = [] {
    FlagTable t{
        {"circuits", "LIST", "comma-separated gen names (default mul12,ks64)"},
        {"engines", "LIST", "comma-separated engines (default hj,partitioned)"},
        {"schedules", "N", "schedules per (circuit, engine, strategy) "
                           "combination (default 16)"},
        {"workers", "N", "worker threads per run (default 4)"},
        {"vectors", "N", "random stimulus vectors (default 2)"},
        {"interval", "T", "random stimulus spacing (default 60)"},
        {"seed", "S", "random stimulus seed (default 911)"},
    };
    t.add_all(tool::explore_flags());
    t.add_all(tool::common_flags());
    return t;
  }();
  return table;
}

int usage(const char* prog) {
  std::fprintf(stderr, "usage: %s [options]\n%s", prog,
               explore_tool_flags().usage().c_str());
  return 2;
}

std::vector<std::string> split_list(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t comma = spec.find(',', pos);
    out.push_back(spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

circuit::Netlist make_circuit(const std::string& name, bool* ok) {
  *ok = true;
  if (name.rfind("ks", 0) == 0) {
    return circuit::kogge_stone_adder(std::atoi(name.c_str() + 2));
  }
  if (name.rfind("mul", 0) == 0) {
    return circuit::tree_multiplier(std::atoi(name.c_str() + 3));
  }
  if (name.rfind("ripple", 0) == 0) {
    return circuit::ripple_carry_adder(std::atoi(name.c_str() + 6));
  }
  *ok = false;
  return circuit::kogge_stone_adder(8);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  if (cli.has("help")) return usage(argv[0]);
  tool::warn_unknown_flags(cli, explore_tool_flags());

  tool::ExploreOptions opt;
  std::string error;
  if (!tool::explore_options_from_cli(cli, &opt, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  opt.schedules = static_cast<int>(cli.get_int("schedules", 16));
  if (opt.schedules < 1) {
    std::fprintf(stderr, "error: --schedules needs at least 1\n");
    return 2;
  }

  const std::vector<std::string> circuits =
      split_list(cli.get("circuits", "mul12,ks64"));
  const std::vector<std::string> engines =
      split_list(cli.get("engines", "hj,partitioned"));
  // --explore-strategy narrows the sweep to one strategy; the default sweeps
  // both so uniform and priority-skewed interleavings are covered.
  std::vector<fault::sched::Strategy> strategies;
  if (cli.has("explore-strategy")) {
    strategies.push_back(opt.strategy);
  } else {
    strategies = {fault::sched::Strategy::kWalk,
                  fault::sched::Strategy::kPct};
  }

  des::RunConfig config;
  config.workers = static_cast<int>(cli.get_int("workers", 4));

  int combos = 0;
  for (const std::string& circuit_name : circuits) {
    bool ok = false;
    circuit::Netlist netlist = make_circuit(circuit_name, &ok);
    if (!ok) {
      std::fprintf(stderr, "error: unknown circuit '%s' (ks<bits>, "
                   "mul<bits>, ripple<bits>)\n", circuit_name.c_str());
      return 2;
    }
    const circuit::Stimulus stimulus = circuit::random_stimulus(
        netlist, static_cast<std::size_t>(cli.get_int("vectors", 2)),
        cli.get_int("interval", 60),
        static_cast<std::uint64_t>(cli.get_int("seed", 911)));
    const des::SimInput input(netlist, stimulus);
    for (const std::string& engine_name : engines) {
      const des::EngineInfo* engine = des::find_engine(engine_name);
      if (engine == nullptr) {
        std::fprintf(stderr, "error: unknown engine '%s' (%s)\n",
                     engine_name.c_str(), des::engine_list().c_str());
        return 2;
      }
      for (fault::sched::Strategy strategy : strategies) {
        tool::ExploreOptions combo = opt;
        combo.strategy = strategy;
        const std::string label =
            circuit_name + "/" + engine_name + "/" +
            fault::sched::strategy_name(strategy);
        const int rc = tool::explore_circuit(input, *engine, config, combo,
                                             label.c_str());
        if (rc != 0) {
          if (rc == 1) {
            std::printf(
                "replay with: hjdes_sim --circuit gen:%s --engine %s "
                "--random-vectors %lld --interval %lld --seed %lld "
                "--workers %d --replay=%s\n",
                circuit_name.c_str(), engine_name.c_str(),
                static_cast<long long>(cli.get_int("vectors", 2)),
                static_cast<long long>(cli.get_int("interval", 60)),
                static_cast<long long>(cli.get_int("seed", 911)),
                config.workers, combo.trace_path.c_str());
          }
          return rc;
        }
        ++combos;
      }
    }
  }
  std::printf("explore: %d combination(s) x %d schedules clean\n", combos,
              opt.schedules);
  if (!tool::dump_metrics_if_requested(cli)) return 1;
  return 0;
}
