// hjdes_netsim — command-line network simulator over the netsim engines.
//
//   hjdes_netsim [--topology torus|ring|star|random] [--size 6]
//                [--packets 10000] [--horizon 10000] [--seed 1]
//                [--engine global|cmb] [--workers 4] [--verify]
//                [--hotspot]   (all-to-one traffic instead of uniform)
//                [--trace out.json] [--metrics-json out.json]
//                [--check]     (hjcheck report; exits nonzero on violations)
#include <algorithm>
#include <cstdio>

#include <cstddef>

#include "netsim/netsim.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"
#include "tool_common.hpp"

using namespace hjdes;
using namespace hjdes::netsim;

namespace {

const FlagTable& netsim_flags() {
  static const FlagTable table = [] {
    FlagTable t{
        {"topology", "KIND", "torus|ring|star|random (default torus)"},
        {"size", "N", "topology scale (default 6)"},
        {"packets", "N", "injected packets (default 10000)"},
        {"horizon", "T", "injection horizon (default 10000)"},
        {"seed", "S", "traffic seed (default 1)"},
        {"engine", "NAME", netsim::engine_list() + " (default cmb)"},
        {"workers", "N", "cmb worker threads (default 4)"},
        {"hotspot", "", "all-to-one traffic instead of uniform"},
        {"verify", "", "cross-check against the global event list"},
        {"fault-rate", "PPM", "seeded fault injections per million decisions "
                              "(needs -DHJDES_FAULT=ON; default 0 = off)"},
        {"fault-seed", "S", "seed of the fault-injection streams (default 1)"},
        {"watchdog-ms", "N", "stall watchdog window; dump + exit nonzero "
                             "after N ms without progress (default 0 = off)"},
    };
    t.add_all(tool::common_flags());
    return t;
  }();
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  tool::warn_unknown_flags(cli, netsim_flags());
  const std::string kind = cli.get("topology", "torus");
  const int size = static_cast<int>(cli.get_int("size", 6));
  const auto packets = static_cast<std::size_t>(cli.get_int("packets", 10000));
  const Time horizon = cli.get_int("horizon", 10000);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string engine = cli.get("engine", "cmb");
  const int workers = static_cast<int>(cli.get_int("workers", 4));
  const NetEngineInfo* info = netsim::find_engine(engine);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown engine '%s' (%s)\nusage:\n%s",
                 engine.c_str(), netsim::engine_list().c_str(),
                 netsim_flags().usage().c_str());
    return 2;
  }
  if (!info->honors_workers && cli.has("workers")) {
    std::fprintf(stderr, "warning: engine '%s' ignores --workers\n",
                 engine.c_str());
  }

  Topology topo = kind == "ring"   ? ring_topology(size * size, 2, 3)
                  : kind == "star" ? star_topology(size * size, 2, 3)
                  : kind == "random"
                      ? random_topology(size * size, 2 * size * size, 3, 4,
                                        seed)
                      : torus_topology(size, 2, 3);
  Traffic traffic = cli.has("hotspot")
                        ? hotspot_traffic(topo, 0, packets / topo.node_count(),
                                          std::max<Time>(1, horizon /
                                              std::max<std::size_t>(1,
                                                  packets /
                                                  topo.node_count())))
                        : random_traffic(topo, packets, horizon, seed);

  std::printf("%s: %zu nodes, %zu links; %zu packets\n", kind.c_str(),
              topo.node_count(), topo.link_count(),
              traffic.injections.size());

  // Fit end_time just past the last delivery (see bench_netsim).
  Time end_time = 1;
  {
    NetSimResult probe = run_global_list(topo, traffic, horizon * 1000);
    for (const PacketRecord& p : probe.packets) {
      end_time = std::max(end_time, p.delivered + 1);
    }
  }

  tool::start_trace_if_requested(cli);
  auto watchdog = tool::arm_fault_harness(cli);
  Timer t;
  NetSimResult r = info->run(topo, traffic, end_time,
                             NetEngineConfig{.workers = workers});
  const double secs = t.seconds();
  watchdog.reset();  // disarm before the single-threaded epilogue
  tool::fault_epilogue();
  if (!tool::finish_trace_if_requested(cli)) return 1;

  std::printf("engine %s: %.2f ms; delivered %llu/%zu, avg latency %.1f, "
              "%llu events, %llu forwards",
              engine.c_str(), secs * 1e3,
              static_cast<unsigned long long>(r.delivered_count()),
              traffic.injections.size(), r.average_latency(),
              static_cast<unsigned long long>(r.events_processed),
              static_cast<unsigned long long>(r.forwards));
  if (r.null_messages != 0) {
    std::printf(", %.2f nulls/event",
                static_cast<double>(r.null_messages) /
                    static_cast<double>(std::max<std::uint64_t>(
                        1, r.events_processed)));
  }
  std::printf("\n");

  if (cli.has("verify") && engine != "global") {
    NetSimResult ref = run_global_list(topo, traffic, end_time);
    if (same_behaviour(ref, r)) {
      std::printf("verify: OK (bit-identical to the global event list)\n");
    } else {
      std::printf("verify: MISMATCH — %s\n", diff_behaviour(ref, r).c_str());
      return 1;
    }
  }

  // --check runs before --metrics-json so cycle findings land in the
  // check.* counters of the JSON dump.
  const std::uint64_t check_violations = tool::check_report_if_requested(cli);
  if (!tool::dump_metrics_if_requested(cli)) return 1;
  return check_violations != 0 ? 1 : 0;
}
