#pragma once
// Deterministic schedule exploration shared by hjdes_sim (--explore /
// --replay) and the hjdes_explore driver: run N seeded schedules with the
// hjverify oracles armed, compare every run against the sequential
// reference, and on the first violating schedule save the decision trace so
// it can be replayed bit-exactly with --replay=<file>. See docs/ANALYSIS.md
// ("Schedule exploration") for the workflow.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "check/check.hpp"
#include "des/engines.hpp"
#include "fault/fault.hpp"
#include "support/cli.hpp"

namespace hjdes::tool {

/// Sites perturbed by default: the benign yield/flush/push points — they
/// reorder work across threads without corrupting any protocol, so a clean
/// engine must stay violation-free and bit-identical under all of them.
inline std::uint32_t default_explore_sites() noexcept {
  return fault::site_bit(fault::Site::kSpscPush) |
         fault::site_bit(fault::Site::kBatchFlush) |
         fault::site_bit(fault::Site::kWorkerYield);
}

struct ExploreOptions {
  int schedules = 64;
  std::uint64_t seed = 1;  ///< schedule s records under seed + s
  fault::sched::Strategy strategy = fault::sched::Strategy::kWalk;
  std::uint32_t rate_ppm = 200000;
  std::uint32_t site_mask = 0;  ///< 0 = default_explore_sites()
  std::string trace_path = "hjdes-schedule.trace";
};

/// The exploration-controller flags both tools understand (--explore itself
/// and --schedules stay tool-specific).
inline const FlagTable& explore_flags() {
  static const FlagTable table{
      {"explore-seed", "S", "base schedule seed (default 1)"},
      {"explore-rate", "PPM", "perturbation rate per decision site "
                              "(default 200000)"},
      {"explore-strategy", "NAME", "walk or pct (default walk)"},
      {"explore-sites", "SPEC", "comma-separated site names or 0xMASK "
                                "(default spsc_push,batch_flush,worker_yield)"},
      {"explore-trace", "FILE", "where to save a violating schedule "
                                "(default hjdes-schedule.trace)"},
      {"replay", "FILE", "replay a recorded schedule trace bit-exactly"},
  };
  return table;
}

/// "spsc_push,worker_yield" or "0x9" -> site mask. False + *error on junk.
inline bool parse_site_spec(const std::string& spec, std::uint32_t* mask,
                            std::string* error) {
  if (spec.rfind("0x", 0) == 0 || spec.rfind("0X", 0) == 0) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(spec.c_str(), &end, 16);
    if (end == nullptr || *end != '\0' || v == 0) {
      *error = "bad --explore-sites mask '" + spec + "'";
      return false;
    }
    *mask = static_cast<std::uint32_t>(v);
    return true;
  }
  std::uint32_t m = 0;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t comma = spec.find(',', pos);
    const std::string name = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    fault::Site site;
    if (!fault::site_from_name(name, &site)) {
      *error = "unknown fault site '" + name + "' in --explore-sites";
      return false;
    }
    m |= fault::site_bit(site);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  *mask = m;
  return true;
}

inline bool explore_options_from_cli(const Cli& cli, ExploreOptions* opt,
                                     std::string* error) {
  opt->seed = static_cast<std::uint64_t>(cli.get_int("explore-seed", 1));
  opt->rate_ppm = static_cast<std::uint32_t>(
      cli.get_int("explore-rate", static_cast<std::int64_t>(opt->rate_ppm)));
  const std::string strat = cli.get("explore-strategy", "walk");
  if (!fault::sched::strategy_from_name(strat, &opt->strategy)) {
    *error = "unknown --explore-strategy '" + strat + "' (walk, pct)";
    return false;
  }
  if (cli.has("explore-sites")) {
    if (!parse_site_spec(cli.get("explore-sites", ""), &opt->site_mask,
                         error)) {
      return false;
    }
  }
  opt->trace_path = cli.get("explore-trace", opt->trace_path);
  return true;
}

/// One engine run with the full oracle battery armed: reset hjcheck, run,
/// verify the lock graph, return the violation total.
inline std::uint64_t checked_run(const des::SimInput& input,
                                 const des::EngineInfo& engine,
                                 const des::RunConfig& config,
                                 des::SimResult* out) {
  check::reset();
  check::lockorder::reset_graph();
  *out = engine.run(input, config);
  check::lockorder::verify_no_cycles();
  return check::violation_count();
}

inline void print_violation_messages() {
  for (const std::string& m : check::violation_messages()) {
    std::printf("  %s\n", m.c_str());
  }
}

/// Explore opt.schedules seeded schedules of `engine` on `input`. Returns 0
/// when every schedule is violation-free and bit-identical to sequential;
/// on the first failure saves the trace to opt.trace_path and returns 1.
/// Returns 2 when the schedule controller is not compiled in.
inline int explore_circuit(const des::SimInput& input,
                           const des::EngineInfo& engine,
                           const des::RunConfig& config,
                           const ExploreOptions& opt, const char* label) {
  if (!fault::sched::compiled_in()) {
    std::fprintf(stderr,
                 "error: schedule exploration not compiled in (reconfigure "
                 "with -DHJDES_CHECK=ON or -DHJDES_FAULT=ON)\n");
    return 2;
  }
  const std::uint32_t sites =
      opt.site_mask != 0 ? opt.site_mask : default_explore_sites();
  const des::SimResult ref = des::run_sequential(input);
  std::uint64_t decisions = 0;
  std::uint64_t injected = 0;
  for (int s = 0; s < opt.schedules; ++s) {
    const std::uint64_t seed = opt.seed + static_cast<std::uint64_t>(s);
    fault::sched::start_record(seed, opt.strategy, opt.rate_ppm, sites);
    des::SimResult result;
    const std::uint64_t violations =
        checked_run(input, engine, config, &result);
    fault::sched::stop();
    decisions += fault::sched::decisions_total();
    injected += fault::sched::injected_total();
    const bool mismatch = !des::same_behaviour(ref, result);
    if (violations != 0 || mismatch) {
      std::printf("explore[%s]: schedule %d (seed %llu) FAILED — "
                  "%llu violation(s)%s\n",
                  label, s, static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(violations),
                  mismatch ? ", result diverges from sequential" : "");
      print_violation_messages();
      if (mismatch) {
        std::printf("  %s\n", des::diff_behaviour(ref, result).c_str());
      }
      if (fault::sched::save_trace(opt.trace_path)) {
        std::printf("  schedule trace saved to %s — replay bit-exactly "
                    "with --replay=%s\n",
                    opt.trace_path.c_str(), opt.trace_path.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write schedule trace to %s\n",
                     opt.trace_path.c_str());
      }
      return 1;
    }
  }
  std::printf("explore[%s]: %d schedules (%s, rate %u ppm) clean — "
              "%llu decisions, %llu perturbations, bit-identical throughout\n",
              label, opt.schedules,
              fault::sched::strategy_name(opt.strategy), opt.rate_ppm,
              static_cast<unsigned long long>(decisions),
              static_cast<unsigned long long>(injected));
  return 0;
}

/// Replay a recorded schedule trace bit-exactly and re-run the oracle
/// battery. Exit codes mirror explore_circuit.
inline int replay_circuit(const des::SimInput& input,
                          const des::EngineInfo& engine,
                          const des::RunConfig& config,
                          const std::string& trace_path) {
  if (!fault::sched::compiled_in()) {
    std::fprintf(stderr,
                 "error: schedule replay not compiled in (reconfigure with "
                 "-DHJDES_CHECK=ON or -DHJDES_FAULT=ON)\n");
    return 2;
  }
  std::string error;
  if (!fault::sched::load_trace(trace_path, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (!fault::sched::start_replay()) return 2;
  des::SimResult result;
  const std::uint64_t violations = checked_run(input, engine, config, &result);
  fault::sched::stop();
  const des::SimResult ref = des::run_sequential(input);
  const bool mismatch = !des::same_behaviour(ref, result);
  std::printf("replay[%s]: %llu decision(s) consumed, %llu violation(s)%s\n",
              trace_path.c_str(),
              static_cast<unsigned long long>(fault::sched::decisions_total()),
              static_cast<unsigned long long>(violations),
              mismatch ? ", result diverges from sequential" : "");
  print_violation_messages();
  if (mismatch) {
    std::printf("  %s\n", des::diff_behaviour(ref, result).c_str());
  }
  return violations != 0 || mismatch ? 1 : 0;
}

}  // namespace hjdes::tool
