// Cross-engine overview (beyond the paper's two versions): every engine in
// the des registry on every workload — the summary table a downstream user
// wants first. The engine list comes from des::engines(), so a new engine
// registered there appears here with no bench change.
//
// The topology section compares pinned against unpinned runs of the engines
// that honor placement (hj, partitioned) and writes the numbers plus the
// detected machine shape to BENCH_topology.json (path overridable via
// HJDES_TOPOLOGY_JSON) for the CI artifact. HJDES_SMOKE=1 shrinks it to one
// repetition and skips the all-engines overview table (whose optimistic
// engines dominate the runtime) so the CI job finishes in seconds.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "des/lp_engines.hpp"
#include "des/model_registry.hpp"
#include "des/packed_engine.hpp"
#include "serve/trial_scheduler.hpp"
#include "support/event_arena.hpp"
#include "support/rng.hpp"
#include "support/topology.hpp"

namespace {

using namespace hjdes;
using namespace hjdes::bench;

bool smoke() {
  const char* v = std::getenv("HJDES_SMOKE");
  return v != nullptr && std::string(v) != "0";
}

struct TopologyCell {
  std::string circuit;
  std::string engine;
  std::string pin;
  double min_ms = 0.0;
  double mean_ms = 0.0;
};

void print_topology_comparison() {
  const int reps = smoke() ? 1 : repetitions();
  const int workers = worker_counts().back();
  const support::MachineTopology& topo = support::machine_topology();
  std::printf(
      "\n=== Topology: pin policies at %d workers (%d reps; %d cpus, "
      "%d node(s), pinning %s) ===\n",
      workers, reps, topo.cpu_count(), topo.numa_nodes,
      topo.pinning_supported ? "supported" : "unavailable");

  std::vector<TopologyCell> cells;
  TextTable t;
  t.header({"circuit", "engine", "pin", "min ms", "avg ms"});
  for (Workload& w : all_workloads()) {
    des::SimInput input(w.netlist, w.stimulus);
    for (const char* engine_name : {"hj", "partitioned"}) {
      const des::EngineInfo* engine = des::find_engine(engine_name);
      for (support::PinPolicy pin :
           {support::PinPolicy::kNone, support::PinPolicy::kCompact,
            support::PinPolicy::kScatter}) {
        des::RunConfig config;
        config.workers = workers;
        config.pin = pin;
        Summary s = measure([&] { (void)engine->run(input, config); }, reps);
        TopologyCell cell;
        cell.circuit = w.name;
        cell.engine = engine_name;
        cell.pin = support::pin_policy_name(pin);
        cell.min_ms = s.min * 1e3;
        cell.mean_ms = s.mean * 1e3;
        cells.push_back(cell);
        t.row({cell.circuit, cell.engine, cell.pin, TextTable::fmt(cell.min_ms),
               TextTable::fmt(cell.mean_ms)});
      }
    }
  }
  std::printf("%s\n", t.render().c_str());

  const char* path_env = std::getenv("HJDES_TOPOLOGY_JSON");
  const std::string path =
      path_env != nullptr && *path_env != '\0' ? path_env
                                               : "BENCH_topology.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "topology: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out,
               "{\n  \"machine\": {\"cpus\": %d, \"numa_nodes\": %d, "
               "\"pinning_supported\": %s},\n  \"workers\": %d,\n"
               "  \"reps\": %d,\n  \"cells\": [\n",
               topo.cpu_count(), topo.numa_nodes,
               topo.pinning_supported ? "true" : "false", workers, reps);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const TopologyCell& c = cells[i];
    std::fprintf(out,
                 "    {\"circuit\": \"%s\", \"engine\": \"%s\", "
                 "\"pin\": \"%s\", \"min_ms\": %.3f, \"mean_ms\": %.3f}%s\n",
                 c.circuit.c_str(), c.engine.c_str(), c.pin.c_str(), c.min_ms,
                 c.mean_ms, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("topology: wrote %zu cells to %s\n", cells.size(), path.c_str());
}

// --- Event-core trajectory (BENCH_core.json) -------------------------------
// Sequential events/sec across the event-core configurations behind --queue
// and --bitparallel, on the paper's three circuits. The JSON is committed at
// the repo root per PR and diffed by scripts/bench_diff.py in the
// bench-trajectory CI job: ratios are normalized by their median, so
// machine-speed differences between the committing machine and the CI runner
// cancel and only relative per-cell regressions trip the gate. This section
// always runs 3+ repetitions — even under HJDES_SMOKE — because a
// single-rep sample would make the 15% gate flaky.

struct CoreCell {
  std::string circuit;
  std::string config;
  double min_ms = 0.0;
  double mean_ms = 0.0;
  unsigned long long events = 0;  ///< useful simulated events per run
  double events_per_sec = 0.0;
};

void print_core_trajectory() {
  const int reps = std::max(smoke() ? 3 : repetitions(), 3);
  std::printf("\n=== Event core: events/sec by queue/bit-parallel config "
              "(%d reps) ===\n", reps);

  const des::EngineInfo* seq = des::find_engine("seq");
  std::vector<CoreCell> cells;
  TextTable t;
  t.header({"circuit", "config", "min ms", "events", "Mev/s"});

  auto record = [&](const std::string& circuit, const char* config,
                    const Summary& s, unsigned long long events) {
    CoreCell c;
    c.circuit = circuit;
    c.config = config;
    c.min_ms = s.min * 1e3;
    c.mean_ms = s.mean * 1e3;
    c.events = events;
    c.events_per_sec = s.min > 0.0 ? static_cast<double>(events) / s.min : 0.0;
    t.row({c.circuit, c.config, TextTable::fmt(c.min_ms),
           TextTable::fmt_int(static_cast<long long>(c.events)),
           TextTable::fmt(c.events_per_sec / 1e6)});
    cells.push_back(std::move(c));
  };

  for (Workload& w : all_workloads()) {
    des::SimInput input(w.netlist, w.stimulus);

    struct ScalarCfg {
      const char* name;
      des::QueueKind kind;
    };
    for (const ScalarCfg& cfg :
         {ScalarCfg{"seq", des::QueueKind::kDefault},
          ScalarCfg{"seq-heap", des::QueueKind::kHeap},
          ScalarCfg{"seq-ladder", des::QueueKind::kLadder}}) {
      des::RunConfig config;
      config.queue_kind = cfg.kind;
      des::SimResult last;
      Summary s = measure([&] { last = seq->run(input, config); }, reps);
      record(w.name, cfg.name, s, last.events_processed);
    }

    // Bit-parallel cells: 64 lanes sharing the workload's timeline with
    // independently randomized values — one packed pass simulates 64
    // vectors' worth of stimulus, so useful events count all lanes. The
    // event flow is value-blind, so every lane does exactly the scalar
    // run's event count; the ≥1.5x trajectory claim rides on this ratio.
    std::vector<circuit::Stimulus> lanes(
        static_cast<std::size_t>(des::kPackedLanes), w.stimulus);
    Xoshiro256 rng(0x9E3779B97F4A7C15ull);
    for (circuit::Stimulus& lane : lanes) {
      for (auto& events : lane.initial) {
        for (auto& e : events) e.value = rng.below(2) != 0;
      }
    }
    std::vector<const circuit::Stimulus*> ptrs;
    for (const circuit::Stimulus& lane : lanes) ptrs.push_back(&lane);

    struct PackedCfg {
      const char* name;
      des::QueueKind kind;
    };
    for (const PackedCfg& cfg :
         {PackedCfg{"seq-bp64", des::QueueKind::kDefault},
          PackedCfg{"seq-ladder-bp64", des::QueueKind::kLadder}}) {
      des::PackedResult last;
      Summary s = measure(
          [&] { last = des::run_packed(w.netlist, ptrs, cfg.kind); }, reps);
      unsigned long long events = 0;
      for (const des::SimResult& lane : last.lanes) {
        events += lane.events_processed;
      }
      record(w.name, cfg.name, s, events);
    }
  }

  // Serve throughput cells: the experiment-throughput subsystem's headline
  // ratio (docs/SERVING.md). serve-trial-loop models what N separate
  // sequential `hjdes_sim` invocations cost per trial: each trial runs on a
  // fresh thread with a cold event arena and rebuilds the netlist and
  // stimulus, so only the process exec itself is elided (a conservative
  // baseline — the real thing pays fork/exec on top). serve-sched-packed
  // submits a 256-replication mul12 job to an already-running TrialScheduler
  // — the long-lived daemon shape, warm workers — which routes the
  // identical-timeline replications through the 64-lane packed core. Both
  // are events/sec over the same trial shape, so their ratio is the
  // trial-throughput multiple the scheduler buys; bench_diff.py gates it
  // like any other cell.
  {
    const std::size_t kLoopTrials = 64;
    unsigned long long loop_events = 0;
    Summary sl = measure(
        [&] {
          loop_events = 0;
          for (std::size_t i = 0; i < kLoopTrials; ++i) {
            std::thread invocation([&loop_events, i] {
              EventArena arena;
              ArenaScope scope(&arena);
              const circuit::Netlist mul12 = circuit::tree_multiplier(12);
              const circuit::Stimulus st =
                  circuit::random_stimulus(mul12, 2, 100, 1 + i);
              const des::SimInput in(mul12, st);
              loop_events += des::run_sequential(in).events_processed;
            });
            invocation.join();
          }
        },
        reps);
    record("multiplier-12bit", "serve-trial-loop", sl, loop_events);

    serve::JobSpec spec;
    spec.id = "bench";
    spec.circuit = "gen:mul12";
    spec.replications = 256;
    spec.vectors = 2;
    spec.interval = 100;
    spec.seed = 1;
    serve::JobResult result;
    serve::SchedulerConfig sched_config;  // auto workers, packing on
    serve::TrialScheduler scheduler(
        sched_config, [&result](const serve::JobResult& r) { result = r; });
    unsigned long long serve_events = 0;
    Summary ss = measure(
        [&] {
          const serve::Admission a = scheduler.submit(spec);
          scheduler.drain();
          serve_events = a.accepted ? result.total_events : 0;
        },
        reps);
    record("multiplier-12bit", "serve-sched-packed", ss, serve_events);
  }

  // Generic LP-model cells: PHOLD and M/M/1 through the workload-agnostic
  // model interface (--model), sequential, hj, partitioned and Time Warp at
  // 4 workers. A model instance is single-use (a run consumes its state), so
  // each iteration rebuilds from the registry — construction is a few
  // allocations against tens of thousands of simulated events, so the cell
  // still measures the engine. These cells gate the LP dispatch path the
  // same way the circuit cells gate the event core. The lookahead=1 PHOLD
  // point is the optimistic engine's headline: with a sparse event
  // population the conservative engines degrade to thousands of one-tick
  // windows with only a handful of events each — pure round-synchronization
  // cost — while Time Warp's speculation runs straight through; the lp-tw4
  // cell must beat lp-part4 on that row. The lookahead=1 cells are keyed
  // "phold-la1" so both PHOLD points coexist in the JSON.
  {
    struct ModelPoint {
      const char* key;
      const char* model;
      const char* params;
    };
    for (const ModelPoint& mp :
         {ModelPoint{"phold", "phold",
                     "lps=256,pop=4,remote=50,lookahead=4,spread=16,end=1000"},
          ModelPoint{"phold-la1", "phold",
                     "lps=64,pop=2,remote=80,lookahead=1,spread=32,end=4000"},
          ModelPoint{"mm1", "mm1", "stations=8,arrive=4,service=3,end=8000"}}) {
      std::string error;
      des::ModelResult last;
      Summary sq = measure(
          [&] {
            std::unique_ptr<des::Model> m =
                des::make_model(mp.model, mp.params, 1, &error);
            last = des::run_model_sequential(*m);
          },
          reps);
      record(mp.key, "lp-seq", sq, last.events_processed);

      Summary sh = measure(
          [&] {
            std::unique_ptr<des::Model> m =
                des::make_model(mp.model, mp.params, 1, &error);
            des::ModelEngineConfig cfg;
            cfg.workers = 4;
            last = des::run_model_hj(*m, cfg);
          },
          reps);
      record(mp.key, "lp-hj4", sh, last.events_processed);

      Summary sp = measure(
          [&] {
            std::unique_ptr<des::Model> m =
                des::make_model(mp.model, mp.params, 1, &error);
            des::ModelEngineConfig cfg;
            cfg.workers = 4;
            last = des::run_model_partitioned(*m, cfg);
          },
          reps);
      record(mp.key, "lp-part4", sp, last.events_processed);

      Summary st = measure(
          [&] {
            std::unique_ptr<des::Model> m =
                des::make_model(mp.model, mp.params, 1, &error);
            des::ModelEngineConfig cfg;
            cfg.workers = 4;
            last = des::run_model_timewarp(*m, cfg);
          },
          reps);
      record(mp.key, "lp-tw4", st, last.events_processed);
    }
  }

  std::printf("%s\n", t.render().c_str());

  const char* path_env = std::getenv("HJDES_CORE_JSON");
  const std::string path =
      path_env != nullptr && *path_env != '\0' ? path_env : "BENCH_core.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "core: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out,
               "{\n  \"schema\": \"hjdes-bench-core\",\n  \"version\": 1,\n"
               "  \"smoke\": %s,\n  \"reps\": %d,\n  \"cells\": [\n",
               smoke() ? "true" : "false", reps);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CoreCell& c = cells[i];
    std::fprintf(out,
                 "    {\"circuit\": \"%s\", \"config\": \"%s\", "
                 "\"min_ms\": %.3f, \"mean_ms\": %.3f, \"events\": %llu, "
                 "\"events_per_sec\": %.1f}%s\n",
                 c.circuit.c_str(), c.config.c_str(), c.min_ms, c.mean_ms,
                 c.events, c.events_per_sec, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("core: wrote %zu cells to %s\n", cells.size(), path.c_str());
}

void print_overview() {
  const int reps = smoke() ? 1 : repetitions();
  const int workers = worker_counts().back();
  std::printf("\n=== Engine overview at %d workers (%d reps) ===\n", workers,
              reps);
  TextTable t;
  t.header({"circuit", "engine", "min ms", "avg ms", "events"});
  for (Workload& w : all_workloads()) {
    des::SimInput input(w.netlist, w.stimulus);
    des::RunConfig config;
    config.workers = workers;
    for (const des::EngineInfo& engine : des::engines()) {
      des::SimResult last;
      Summary s = measure([&] { last = engine.run(input, config); }, reps);
      t.row({w.name, std::string(engine.name), TextTable::fmt(s.min * 1e3),
             TextTable::fmt(s.mean * 1e3),
             TextTable::fmt_int(
                 static_cast<long long>(last.events_processed))});
    }
  }
  std::printf("%s\n", t.render().c_str());
}

void BM_Overview(benchmark::State& state) {
  Workload w = make_ks64_workload();
  des::SimInput input(w.netlist, w.stimulus);
  for (auto _ : state) {
    des::SimResult r = des::run_sequential(input);
    benchmark::DoNotOptimize(r.events_processed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("overview/anchor_seq", BM_Overview)
      ->Iterations(1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (!smoke()) print_overview();
  print_core_trajectory();
  print_topology_comparison();
  return 0;
}
