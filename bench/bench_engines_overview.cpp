// Cross-engine overview (beyond the paper's two versions): every engine in
// the des registry on every workload — the summary table a downstream user
// wants first. The engine list comes from des::engines(), so a new engine
// registered there appears here with no bench change.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_common.hpp"

namespace {

using namespace hjdes;
using namespace hjdes::bench;

void print_overview() {
  const int reps = repetitions();
  const int workers = worker_counts().back();
  std::printf("\n=== Engine overview at %d workers (%d reps) ===\n", workers,
              reps);
  TextTable t;
  t.header({"circuit", "engine", "min ms", "avg ms", "events"});
  for (Workload& w : all_workloads()) {
    des::SimInput input(w.netlist, w.stimulus);
    des::EngineOptions opts;
    opts.workers = workers;
    for (const des::EngineInfo& engine : des::engines()) {
      des::SimResult last;
      Summary s = measure([&] { last = engine.run(input, opts); }, reps);
      t.row({w.name, std::string(engine.name), TextTable::fmt(s.min * 1e3),
             TextTable::fmt(s.mean * 1e3),
             TextTable::fmt_int(
                 static_cast<long long>(last.events_processed))});
    }
  }
  std::printf("%s\n", t.render().c_str());
}

void BM_Overview(benchmark::State& state) {
  Workload w = make_ks64_workload();
  des::SimInput input(w.netlist, w.stimulus);
  for (auto _ : state) {
    des::SimResult r = des::run_sequential(input);
    benchmark::DoNotOptimize(r.events_processed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("overview/anchor_seq", BM_Overview)
      ->Iterations(1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_overview();
  return 0;
}
