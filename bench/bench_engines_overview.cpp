// Cross-engine overview (beyond the paper's two versions): sequential deque,
// sequential PQ, HJ parallel, Galois optimistic, and the §6 future-work
// actor engine on one circuit — the summary table a downstream user wants
// first.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace hjdes;
using namespace hjdes::bench;

void print_overview() {
  const int reps = repetitions();
  const int workers = worker_counts().back();
  std::printf("\n=== Engine overview at %d workers (%d reps) ===\n", workers,
              reps);
  TextTable t;
  t.header({"circuit", "engine", "min ms", "avg ms", "events"});
  for (Workload& w : all_workloads()) {
    des::SimInput input(w.netlist, w.stimulus);
    des::SimResult last;

    Summary sd = measure([&] { last = des::run_sequential(input); }, reps);
    t.row({w.name, "sequential (deque)", TextTable::fmt(sd.min * 1e3),
           TextTable::fmt(sd.mean * 1e3),
           TextTable::fmt_int(static_cast<long long>(last.events_processed))});

    Summary sp = measure([&] { last = des::run_sequential_pq(input); }, reps);
    t.row({w.name, "sequential (PQ)", TextTable::fmt(sp.min * 1e3),
           TextTable::fmt(sp.mean * 1e3), ""});

    hj::Runtime rt(workers);
    des::HjEngineConfig hj_cfg;
    hj_cfg.workers = workers;
    hj_cfg.runtime = &rt;
    Summary h = measure([&] { last = des::run_hj(input, hj_cfg); }, reps);
    t.row({w.name, "hj (Alg 2 + 4.5)", TextTable::fmt(h.min * 1e3),
           TextTable::fmt(h.mean * 1e3), ""});

    des::GaloisEngineConfig g_cfg;
    g_cfg.threads = workers;
    Summary g = measure([&] { last = des::run_galois(input, g_cfg); }, reps);
    t.row({w.name, "galois (Alg 3)", TextTable::fmt(g.min * 1e3),
           TextTable::fmt(g.mean * 1e3), ""});

    des::ActorEngineConfig a_cfg;
    a_cfg.workers = workers;
    Summary a = measure([&] { last = des::run_actor(input, a_cfg); }, reps);
    t.row({w.name, "actor (§6)", TextTable::fmt(a.min * 1e3),
           TextTable::fmt(a.mean * 1e3), ""});
  }
  std::printf("%s\n", t.render().c_str());
}

void BM_Overview(benchmark::State& state) {
  Workload w = make_ks64_workload();
  des::SimInput input(w.netlist, w.stimulus);
  for (auto _ : state) {
    des::SimResult r = des::run_sequential(input);
    benchmark::DoNotOptimize(r.events_processed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("overview/anchor_seq", BM_Overview)
      ->Iterations(1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_overview();
  return 0;
}
