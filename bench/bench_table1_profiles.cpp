// Reproduces Table 1: profiles of the input circuits (# nodes, # edges,
// # initial events, # total events). Total events are obtained by running
// the sequential simulation and counting processed events, exactly as the
// amplification arises in the paper's workloads. Paper reference values are
// printed alongside for comparison (our generators differ in gate-level
// detail, so node/edge counts match in magnitude, not exactly).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace hjdes;
using namespace hjdes::bench;

void BM_ProfileCircuit(benchmark::State& state, Workload (*make)()) {
  for (auto _ : state) {
    Workload w = make();
    des::SimInput input(w.netlist, w.stimulus);
    des::SimResult r = des::run_sequential(input);
    benchmark::DoNotOptimize(r.events_processed);
    state.counters["nodes"] = static_cast<double>(w.netlist.node_count());
    state.counters["edges"] = static_cast<double>(w.netlist.edge_count());
    state.counters["initial_events"] =
        static_cast<double>(w.stimulus.total_events());
    state.counters["total_events"] =
        static_cast<double>(r.events_processed);
  }
}

void print_table1() {
  TextTable t;
  t.header({"circuit", "# nodes", "# edges", "# initial events",
            "# total events"});
  for (Workload& w : all_workloads()) {
    des::SimInput input(w.netlist, w.stimulus);
    des::SimResult r = des::run_sequential(input);
    t.row({w.name, TextTable::fmt_int(static_cast<long long>(w.netlist.node_count())),
           TextTable::fmt_int(static_cast<long long>(w.netlist.edge_count())),
           TextTable::fmt_int(static_cast<long long>(w.stimulus.total_events())),
           TextTable::fmt_int(static_cast<long long>(r.events_processed))});
  }
  std::printf("\n=== Table 1: Profiles of the input circuits ===\n%s",
              t.render().c_str());
  std::printf(
      "Paper reference (full scale): multiplier-12bit 2,731 nodes / 5,100 "
      "edges / 49 initial / 56,035,581 total;\n  KS-64 1,306 / 2,289 / "
      "128,258 / 89,683,016; KS-128 2,973 / 5,303 / 66,050 / 102,591,960.\n"
      "Run with HJDES_PAPER_SCALE=1 for full-size circuits.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("table1/multiplier", BM_ProfileCircuit,
                               &hjdes::bench::make_multiplier_workload)
      ->Iterations(1);
  benchmark::RegisterBenchmark("table1/ks64", BM_ProfileCircuit,
                               &hjdes::bench::make_ks64_workload)
      ->Iterations(1);
  benchmark::RegisterBenchmark("table1/ks128", BM_ProfileCircuit,
                               &hjdes::bench::make_ks128_workload)
      ->Iterations(1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table1();
  return 0;
}
