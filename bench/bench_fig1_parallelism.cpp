// Figure 1: available parallelism in the DES as a function of computation
// step (the Galois/ParaMeter-style profile). The paper shows the profile for
// a tree-multiplier input: limited parallelism at the inputs, a large hump
// through the circuit middle, tapering at the outputs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace hjdes;
using namespace hjdes::bench;

void print_profile(const char* name, const des::ParallelismProfile& p) {
  std::printf("\n--- available parallelism: %s ---\n", name);
  std::printf("rounds=%zu peak=%llu avg=%.1f total_events=%llu\n",
              p.rounds.size(),
              static_cast<unsigned long long>(p.peak_parallelism()),
              p.average_parallelism(),
              static_cast<unsigned long long>(p.total_events()));
  // ASCII rendition of the figure: one bar per round (capped at 60 rounds by
  // resampling), bar length proportional to active nodes.
  const std::size_t max_bars = 60;
  const std::size_t stride = std::max<std::size_t>(1, p.rounds.size() / max_bars);
  const double peak = static_cast<double>(p.peak_parallelism());
  for (std::size_t i = 0; i < p.rounds.size(); i += stride) {
    // Take the max over the stride window so narrow spikes stay visible.
    std::uint64_t v = 0;
    for (std::size_t k = i; k < std::min(i + stride, p.rounds.size()); ++k) {
      v = std::max(v, p.rounds[k].active_nodes);
    }
    int bar = peak > 0 ? static_cast<int>(50.0 * static_cast<double>(v) / peak)
                       : 0;
    std::printf("step %4zu | %-50.*s %llu\n", i, bar,
                "##################################################",
                static_cast<unsigned long long>(v));
  }
}

void BM_Profile(benchmark::State& state, Workload (*make)()) {
  Workload w = make();
  des::SimInput input(w.netlist, w.stimulus);
  for (auto _ : state) {
    des::ParallelismProfile p = des::profile_parallelism(input);
    benchmark::DoNotOptimize(p.rounds.size());
    state.counters["peak_parallelism"] =
        static_cast<double>(p.peak_parallelism());
    state.counters["avg_parallelism"] = p.average_parallelism();
  }
}

}  // namespace

int main(int argc, char** argv) {
  hjdes::bench::ScopedTrace trace("figure_1_parallelism");
  benchmark::RegisterBenchmark("fig1/profile/multiplier", BM_Profile,
                               &hjdes::bench::make_multiplier_workload)
      ->Iterations(1);
  benchmark::RegisterBenchmark("fig1/profile/ks64", BM_Profile,
                               &hjdes::bench::make_ks64_workload)
      ->Iterations(1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  std::printf("\n=== Figure 1: available parallelism vs computation step ===\n");
  {
    Workload w = hjdes::bench::make_multiplier_workload();
    des::SimInput input(w.netlist, w.stimulus);
    print_profile(w.name.c_str(), des::profile_parallelism(input));
  }
  {
    // The contrast cases: a prefix adder (wide) and an inverter chain (serial).
    Workload w = hjdes::bench::make_ks64_workload();
    des::SimInput input(w.netlist, w.stimulus);
    print_profile(w.name.c_str(), des::profile_parallelism(input));
  }
  {
    circuit::Netlist chain = circuit::inverter_chain(64);
    circuit::Stimulus s = circuit::single_vector_stimulus(chain, {true});
    des::SimInput input(chain, s);
    print_profile("inverter-chain-64 (serial contrast)",
                  des::profile_parallelism(input));
  }
  std::printf(
      "\nPaper shape: parallelism builds up after the inputs (small port "
      "count), peaks through the circuit middle (fanout), and decreases "
      "toward the outputs.\n\n");
  return 0;
}
