// Figure 6: performance for the 128-bit Kogge-Stone tree adder circuit —
// (a) minimum execution time vs workers, (b) speedup vs sequential Galois.
#include "figure_sweep.hpp"

int main(int argc, char** argv) {
  return hjdes::bench::figure_main(argc, argv, "Figure 6",
                                   &hjdes::bench::make_ks128_workload);
}
