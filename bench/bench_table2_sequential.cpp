// Reproduces Table 2: minimum execution time of the sequential simulation,
// HJlib-style (per-port array deques, run_sequential) vs Galois-Java-style
// (per-node priority queues, run_sequential_pq). The paper attributes nearly
// 50% of the sequential gap to replacing java.util.PriorityQueue with
// java.util.ArrayDeque (§5); the same structural gap reproduces here.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace hjdes;
using namespace hjdes::bench;

std::vector<Workload>& workloads() {
  static std::vector<Workload> ws = all_workloads();
  return ws;
}

void BM_SeqDeque(benchmark::State& state) {
  Workload& w = workloads()[static_cast<std::size_t>(state.range(0))];
  des::SimInput input(w.netlist, w.stimulus);
  for (auto _ : state) {
    des::SimResult r = des::run_sequential(input);
    benchmark::DoNotOptimize(r.events_processed);
    state.counters["events"] = static_cast<double>(r.events_processed);
  }
  state.SetLabel(w.name + "/deque");
}

void BM_SeqPq(benchmark::State& state) {
  Workload& w = workloads()[static_cast<std::size_t>(state.range(0))];
  des::SimInput input(w.netlist, w.stimulus);
  for (auto _ : state) {
    des::SimResult r = des::run_sequential_pq(input);
    benchmark::DoNotOptimize(r.events_processed);
    state.counters["events"] = static_cast<double>(r.events_processed);
  }
  state.SetLabel(w.name + "/priority-queue");
}

void print_table2() {
  const int reps = repetitions();
  TextTable t;
  t.header({"circuit", "HJlib-seq (deque) min ms", "Galois-seq (PQ) min ms",
            "PQ/deque ratio"});
  std::printf("\n=== Table 2: Minimum sequential execution time (%d reps) ===\n",
              reps);
  for (Workload& w : workloads()) {
    des::SimInput input(w.netlist, w.stimulus);
    Summary deque = measure([&] { des::run_sequential(input); }, reps);
    Summary pq = measure([&] { des::run_sequential_pq(input); }, reps);
    t.row({w.name, TextTable::fmt(deque.min * 1e3),
           TextTable::fmt(pq.min * 1e3),
           TextTable::fmt(pq.min / deque.min, 2) + "x"});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Paper reference (s, POWER7/J9): multiplier 31,934 vs 84,077; KS-64 "
      "49,004 vs 134,061; KS-128 66,363 vs 163,643 (2.0-2.7x).\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (std::size_t i = 0; i < workloads().size(); ++i) {
    benchmark::RegisterBenchmark(
        ("table2/seq_deque/" + workloads()[i].name).c_str(), BM_SeqDeque)
        ->Arg(static_cast<int>(i));
    benchmark::RegisterBenchmark(
        ("table2/seq_pq/" + workloads()[i].name).c_str(), BM_SeqPq)
        ->Arg(static_cast<int>(i));
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table2();
  return 0;
}
