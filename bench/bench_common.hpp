#pragma once
// Shared infrastructure for the paper-reproduction benchmarks.
//
// Scaling: the paper runs 56-103M-event simulations on a 32-core POWER7 for
// 20 repetitions. This container is far smaller, so the default workloads
// are scaled-down versions of the same circuits; set HJDES_PAPER_SCALE=1 to
// run the paper-sized inputs (12-bit multiplier, KS-64, KS-128 with
// comparable initial-event counts) and HJDES_REPS / HJDES_MAX_WORKERS to
// control repetitions and the worker sweep.

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "circuit/generators.hpp"
#include "circuit/stimulus.hpp"
#include "des/engines.hpp"
#include "obs/trace.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace hjdes::bench {

inline bool paper_scale() {
  const char* v = std::getenv("HJDES_PAPER_SCALE");
  return v != nullptr && std::string(v) != "0";
}

/// Integer from the environment, or `fallback`. Strict: garbage, trailing
/// junk, or out-of-range values warn on stderr and keep the fallback, where
/// atoi would have silently produced 0 (HJDES_REPS=twenty turning a 20-rep
/// paper run into an empty one).
inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE ||
      parsed < INT_MIN || parsed > INT_MAX) {
    std::fprintf(stderr,
                 "bench: ignoring %s='%s' (not an integer); using %d\n",
                 name, v, fallback);
    return fallback;
  }
  return static_cast<int>(parsed);
}

/// Repetitions per configuration (paper: 20). Clamped to >= 1: zero or
/// negative HJDES_REPS would make every measure() summarize an empty sample
/// set and report all-zero timings as if the run had happened.
inline int repetitions() {
  const int reps = env_int("HJDES_REPS", paper_scale() ? 20 : 3);
  if (reps < 1) {
    std::fprintf(stderr, "bench: clamping HJDES_REPS=%d to 1\n", reps);
    return 1;
  }
  return reps;
}

/// Worker counts for the Figure 4-6 sweeps (paper: 1..32 on 32 cores).
/// Clamped to >= 1: HJDES_MAX_WORKERS=0 (or negative) used to leave the
/// vector empty and make counts.back() undefined behaviour.
inline std::vector<int> worker_counts() {
  int max_workers = env_int("HJDES_MAX_WORKERS", paper_scale() ? 32 : 8);
  if (max_workers < 1) {
    std::fprintf(stderr, "bench: clamping HJDES_MAX_WORKERS=%d to 1\n",
                 max_workers);
    max_workers = 1;
  }
  std::vector<int> counts;
  for (int w = 1; w <= max_workers; w *= 2) counts.push_back(w);
  if (counts.back() != max_workers) counts.push_back(max_workers);
  return counts;
}

/// A named circuit + stimulus, ready to simulate.
struct Workload {
  std::string name;
  circuit::Netlist netlist;
  circuit::Stimulus stimulus;
};

/// The paper's 12-bit tree multiplier (Table 1 column 1). The paper feeds it
/// 49 initial events; we apply 2 random vectors (= 2 events per input).
inline Workload make_multiplier_workload() {
  const int bits = paper_scale() ? 12 : 8;
  Workload w;
  w.name = "multiplier-" + std::to_string(bits) + "bit";
  w.netlist = circuit::tree_multiplier(bits);
  w.stimulus = circuit::random_stimulus(w.netlist, 2, 1000, 0xA11CE);
  return w;
}

/// The paper's 64-bit Kogge-Stone adder (Table 1 column 2; ~1k vectors).
inline Workload make_ks64_workload() {
  const int bits = paper_scale() ? 64 : 32;
  const std::size_t vectors = paper_scale() ? 994 : 40;
  Workload w;
  w.name = "kogge-stone-" + std::to_string(bits) + "bit";
  w.netlist = circuit::kogge_stone_adder(bits);
  w.stimulus = circuit::random_stimulus(w.netlist, vectors, 100, 0xB0B);
  return w;
}

/// The paper's 128-bit Kogge-Stone adder (Table 1 column 3; ~257 vectors).
inline Workload make_ks128_workload() {
  const int bits = paper_scale() ? 128 : 48;
  const std::size_t vectors = paper_scale() ? 257 : 30;
  Workload w;
  w.name = "kogge-stone-" + std::to_string(bits) + "bit";
  w.netlist = circuit::kogge_stone_adder(bits);
  w.stimulus = circuit::random_stimulus(w.netlist, vectors, 100, 0xCAFE);
  return w;
}

inline std::vector<Workload> all_workloads() {
  std::vector<Workload> ws;
  ws.push_back(make_multiplier_workload());
  ws.push_back(make_ks64_workload());
  ws.push_back(make_ks128_workload());
  return ws;
}

/// RAII task-timeline hook for the figure benches. Off by default so the
/// paper-reproduction numbers are untouched; set HJDES_TRACE_DIR=<dir> to
/// enable the obs tracer for the bench's lifetime and write
/// <dir>/<name>.trace.json (Chrome trace-event format, Perfetto-loadable)
/// at scope exit.
class ScopedTrace {
 public:
  explicit ScopedTrace(const std::string& name) {
    const char* dir = std::getenv("HJDES_TRACE_DIR");
    if (dir == nullptr || *dir == '\0') return;
    path_ = std::string(dir) + "/" + name + ".trace.json";
    obs::start_tracing();
  }

  ~ScopedTrace() {
    if (path_.empty()) return;
    obs::stop_tracing();
    std::ofstream out(path_);
    const std::size_t spans = obs::write_chrome_trace(out);
    // A bad HJDES_TRACE_DIR used to print "wrote N events" while writing
    // nothing; check the stream before claiming success.
    if (!out) {
      std::fprintf(stderr, "trace: FAILED to write %s (bad HJDES_TRACE_DIR?)\n",
                   path_.c_str());
      return;
    }
    std::printf("trace: wrote %zu events to %s\n", spans, path_.c_str());
  }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  std::string path_;
};

/// Time one engine invocation in seconds.
template <typename Fn>
double time_run(Fn&& fn) {
  Timer t;
  fn();
  return t.seconds();
}

/// Run `fn` `reps` times (clamped to >= 1 so the Summary is never the
/// all-zero empty-input sentinel) and summarize the wall times.
template <typename Fn>
Summary measure(Fn&& fn, int reps) {
  if (reps < 1) reps = 1;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) samples.push_back(time_run(fn));
  return summarize(samples);
}

}  // namespace hjdes::bench
