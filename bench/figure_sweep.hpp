#pragma once
// Shared implementation of the Figures 4-6 benchmarks: for one input
// circuit, sweep the worker count and report (a) minimum execution time of
// the HJlib and Galois parallel versions, and (b) speedup relative to the
// sequential Galois-style implementation — exactly the two panels of each
// paper figure.

#include <benchmark/benchmark.h>

#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace hjdes::bench {

inline void BM_HjWorkers(benchmark::State& state, Workload* w) {
  des::SimInput input(w->netlist, w->stimulus);
  des::HjEngineConfig cfg;
  cfg.workers = static_cast<int>(state.range(0));
  hj::Runtime rt(cfg.workers);
  cfg.runtime = &rt;
  for (auto _ : state) {
    des::SimResult r = des::run_hj(input, cfg);
    benchmark::DoNotOptimize(r.events_processed);
  }
}

inline void BM_GaloisWorkers(benchmark::State& state, Workload* w) {
  des::SimInput input(w->netlist, w->stimulus);
  des::GaloisEngineConfig cfg;
  cfg.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    des::SimResult r = des::run_galois(input, cfg);
    benchmark::DoNotOptimize(r.events_processed);
  }
}

/// Print the two panels of one figure for `w`.
inline void print_figure(const char* figure_id, Workload& w) {
  const int reps = repetitions();
  des::SimInput input(w.netlist, w.stimulus);

  // Speedup baseline: sequential Galois-style implementation (paper §5
  // "used the sequential execution times of the Galois-Java version as the
  // baselines for speedup calculation").
  Summary seq_pq = measure([&] { des::run_sequential_pq(input); }, reps);
  Summary seq_deque = measure([&] { des::run_sequential(input); }, reps);

  TextTable times, speedups;
  times.header({"workers", "HJlib min ms", "Galois min ms", "HJ reduction %"});
  speedups.header({"workers", "HJlib speedup", "Galois speedup"});

  for (int workers : worker_counts()) {
    hj::Runtime rt(workers);
    des::HjEngineConfig hj_cfg;
    hj_cfg.workers = workers;
    hj_cfg.runtime = &rt;
    Summary hj = measure([&] { des::run_hj(input, hj_cfg); }, reps);

    des::GaloisEngineConfig g_cfg;
    g_cfg.threads = workers;
    Summary gal = measure([&] { des::run_galois(input, g_cfg); }, reps);

    times.row({std::to_string(workers), TextTable::fmt(hj.min * 1e3),
               TextTable::fmt(gal.min * 1e3),
               TextTable::fmt((1.0 - hj.min / gal.min) * 100.0, 1)});
    speedups.row({std::to_string(workers),
                  TextTable::fmt(seq_pq.min / hj.min, 2),
                  TextTable::fmt(seq_pq.min / gal.min, 2)});
  }

  std::printf("\n=== %s: %s (%d reps/point) ===\n", figure_id, w.name.c_str(),
              reps);
  std::printf("sequential baselines: Galois-style (PQ) %.2f ms, HJ-style "
              "(deque) %.2f ms\n",
              seq_pq.min * 1e3, seq_deque.min * 1e3);
  std::printf("(a) minimum execution time\n%s", times.render().c_str());
  std::printf("(b) speedup vs sequential Galois-style baseline\n%s",
              speedups.render().c_str());
  std::printf(
      "Paper shape: HJlib below Galois at every worker count (44.5-79.7%% "
      "reduction), gap largest at few workers.\n"
      "NOTE on this host: with a single physical core, speedup cannot exceed "
      "~1; the HJ-vs-Galois gap is the preserved signal.\n\n");
}

/// Common main body for one figure binary.
inline int figure_main(int argc, char** argv, const char* figure_id,
                       Workload (*make)()) {
  static Workload w = make();
  std::string slug(figure_id);
  for (char& c : slug) {
    c = c == ' ' ? '_'
                 : static_cast<char>(
                       std::tolower(static_cast<unsigned char>(c)));
  }
  ScopedTrace trace(slug + "_" + w.name);
  for (int workers : worker_counts()) {
    benchmark::RegisterBenchmark(
        (std::string(figure_id) + "/hj/" + w.name).c_str(), BM_HjWorkers, &w)
        ->Arg(workers)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        (std::string(figure_id) + "/galois/" + w.name).c_str(),
        BM_GaloisWorkers, &w)
        ->Arg(workers)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_figure(figure_id, w);
  return 0;
}

}  // namespace hjdes::bench
