// Figure 7: average execution time with 95% confidence intervals of both
// Galois and HJlib versions at the maximum worker count, for all three input
// circuits.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace hjdes;
using namespace hjdes::bench;

void print_figure7() {
  const int reps = repetitions();
  const int workers = worker_counts().back();
  std::printf("\n=== Figure 7: average execution time at %d workers "
              "(%d reps, 95%% CI) ===\n",
              workers, reps);
  TextTable t;
  t.header({"circuit", "engine", "avg ms", "95% CI +- ms", "min ms",
            "stddev ms"});
  for (Workload& w : all_workloads()) {
    des::SimInput input(w.netlist, w.stimulus);

    hj::Runtime rt(workers);
    des::HjEngineConfig hj_cfg;
    hj_cfg.workers = workers;
    hj_cfg.runtime = &rt;
    Summary hj = measure([&] { des::run_hj(input, hj_cfg); }, reps);

    des::GaloisEngineConfig g_cfg;
    g_cfg.threads = workers;
    Summary gal = measure([&] { des::run_galois(input, g_cfg); }, reps);

    t.row({w.name, "HJlib", TextTable::fmt(hj.mean * 1e3),
           TextTable::fmt(hj.ci95_half * 1e3), TextTable::fmt(hj.min * 1e3),
           TextTable::fmt(hj.stddev * 1e3)});
    t.row({w.name, "Galois", TextTable::fmt(gal.mean * 1e3),
           TextTable::fmt(gal.ci95_half * 1e3), TextTable::fmt(gal.min * 1e3),
           TextTable::fmt(gal.stddev * 1e3)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("Paper shape: HJlib average below Galois average for every "
              "circuit at 32 workers.\n\n");
}

void BM_Fig7Hj(benchmark::State& state, Workload* w) {
  const int workers = worker_counts().back();
  des::SimInput input(w->netlist, w->stimulus);
  hj::Runtime rt(workers);
  des::HjEngineConfig cfg;
  cfg.workers = workers;
  cfg.runtime = &rt;
  for (auto _ : state) {
    des::SimResult r = des::run_hj(input, cfg);
    benchmark::DoNotOptimize(r.events_processed);
  }
}

void BM_Fig7Galois(benchmark::State& state, Workload* w) {
  const int workers = worker_counts().back();
  des::SimInput input(w->netlist, w->stimulus);
  des::GaloisEngineConfig cfg;
  cfg.threads = workers;
  for (auto _ : state) {
    des::SimResult r = des::run_galois(input, cfg);
    benchmark::DoNotOptimize(r.events_processed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ScopedTrace trace("figure_7_average");
  static std::vector<Workload> ws = all_workloads();
  for (Workload& w : ws) {
    benchmark::RegisterBenchmark(("fig7/hj/" + w.name).c_str(), BM_Fig7Hj, &w)
        ->Iterations(1);
    benchmark::RegisterBenchmark(("fig7/galois/" + w.name).c_str(),
                                 BM_Fig7Galois, &w)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_figure7();
  return 0;
}
