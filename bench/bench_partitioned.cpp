// Partitioned-engine sweep: partitioner x shard count on the three paper
// circuits, against the HJ engine at the same worker count and the
// sequential baseline. Also the bench-side enforcement of the subsystem's
// core claims, checked every run (CI runs this with HJDES_SMOKE=1):
//   * waveforms are bit-identical to run_sequential for every cell,
//   * intra-partition delivery is lock-free — the des.part.lock_acquires
//     counter must not move while local deliveries happen,
//   * multilevel cuts strictly fewer edges than round-robin.
// Any violation exits non-zero.
//
// HJDES_SMOKE=1 shrinks the sweep to one repetition and shard counts {1, 4}
// so CI finishes in seconds; the table layout is unchanged.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "part/partitioner.hpp"

namespace {

using namespace hjdes;
using namespace hjdes::bench;

bool smoke() {
  const char* v = std::getenv("HJDES_SMOKE");
  return v != nullptr && std::string(v) != "0";
}

int failures = 0;

void check(bool ok, const char* what, const std::string& where) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s (%s)\n", what, where.c_str());
    ++failures;
  }
}

void sweep() {
  const int reps = smoke() ? 1 : repetitions();
  const std::vector<std::int32_t> parts =
      smoke() ? std::vector<std::int32_t>{1, 4}
              : std::vector<std::int32_t>{1, 2, 4, 8};
  const part::PartitionerKind kinds[] = {part::PartitionerKind::kRoundRobin,
                                         part::PartitionerKind::kBfs,
                                         part::PartitionerKind::kMultilevel};

  obs::MetricsRegistry& reg = obs::metrics();
  obs::Counter& lock_acquires = reg.counter("des.part.lock_acquires");
  obs::Counter& local_deliveries = reg.counter("des.part.local_deliveries");
  obs::Counter& progressive_nulls = reg.counter("des.part.progressive_nulls");

  std::printf("=== Partitioned engine sweep (%d reps%s) ===\n", reps,
              smoke() ? ", smoke" : "");
  TextTable t;
  t.header({"circuit", "partitioner", "parts", "cut %", "imbal %", "min ms",
            "avg ms", "vs seq", "vs hj", "prog nulls"});
  for (Workload& w : all_workloads()) {
    des::SimInput input(w.netlist, w.stimulus);
    des::SimResult ref;
    const Summary seq =
        measure([&] { ref = des::run_sequential(input); }, reps);

    std::vector<std::size_t> cut_by_kind;
    for (part::PartitionerKind kind : kinds) {
      std::size_t worst_cut = 0;
      for (std::int32_t k : parts) {
        const part::Partition partition =
            part::make_partition(w.netlist, k, kind);
        const part::PartitionStats stats =
            part::partition_stats(w.netlist, partition);
        if (k == 4) worst_cut = stats.cut_edges;

        des::PartitionedConfig cfg;
        cfg.partition = &partition;
        des::HjEngineConfig hj_cfg;
        hj_cfg.workers = static_cast<int>(k);

        const std::string cell = w.name + "/" +
                                 std::string(part::partitioner_name(kind)) +
                                 "/k=" + std::to_string(k);
        const obs::CounterDelta locks(lock_acquires);
        const obs::CounterDelta locals(local_deliveries);
        const obs::CounterDelta prog(progressive_nulls);
        des::SimResult res;
        const Summary part_s =
            measure([&] { res = des::run_partitioned(input, cfg); }, reps);
        check(des::same_behaviour(ref, res),
              "partitioned waveforms differ from sequential", cell);
        check(locks.delta() == 0,
              "lock_acquires moved during a lock-free run", cell);
        check(locals.delta() > 0 || k > 1,
              "single-shard run produced no local deliveries", cell);
        const Summary hj_s =
            measure([&] { res = des::run_hj(input, hj_cfg); }, reps);

        t.row({w.name, std::string(part::partitioner_name(kind)),
               std::to_string(k), TextTable::fmt(stats.cut_ratio() * 100.0),
               TextTable::fmt(stats.imbalance() * 100.0),
               TextTable::fmt(part_s.min * 1e3),
               TextTable::fmt(part_s.mean * 1e3),
               TextTable::fmt(seq.min / part_s.min),
               TextTable::fmt(hj_s.min / part_s.min),
               TextTable::fmt_int(static_cast<long long>(prog.delta()))});
      }
      cut_by_kind.push_back(worst_cut);
    }
    // kinds[] orders round-robin first, multilevel last.
    check(cut_by_kind.back() < cut_by_kind.front(),
          "multilevel did not cut fewer edges than round-robin at k=4",
          w.name);
  }
  std::printf("%s\n", t.render().c_str());
}

}  // namespace

int main() {
  sweep();
  if (failures != 0) {
    std::fprintf(stderr, "bench_partitioned: %d check(s) failed\n", failures);
    return 1;
  }
  std::printf("bench_partitioned: all checks passed\n");
  return 0;
}
