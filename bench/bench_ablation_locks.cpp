// Ablation of §4.3's livelock-avoidance rule: ordered (ascending-ID) vs
// unordered lock acquisition, measured by execution time and failed
// try_lock calls under contention. The paper argues ordered acquisition
// guarantees one contender always wins; unordered acquisition survives here
// only because failed tasks are re-queued (probabilistic progress), at the
// cost of extra failures.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace hjdes;
using namespace hjdes::bench;

Workload make_contended_workload() {
  // High fanout + shallow depth = heavy lock contention between siblings.
  Workload w;
  w.name = "buffer-tree-4x4 (contended)";
  w.netlist = circuit::buffer_tree(4, 4);
  w.stimulus = circuit::random_stimulus(w.netlist, 200, 2, 0xFEED);
  return w;
}

void run_case(TextTable& t, const char* name, Workload& w, bool ordered,
              bool per_port) {
  const int reps = repetitions();
  const int workers = worker_counts().back();
  des::SimInput input(w.netlist, w.stimulus);
  des::HjEngineConfig cfg;
  cfg.workers = workers;
  cfg.ordered_locks = ordered;
  cfg.per_port_queues = per_port;
  cfg.temp_ready_queue = per_port;
  hj::Runtime rt(workers);
  cfg.runtime = &rt;
  des::SimResult last;
  Summary s = measure([&] { last = des::run_hj(input, cfg); }, reps);
  t.row({name, TextTable::fmt(s.min * 1e3), TextTable::fmt(s.mean * 1e3),
         TextTable::fmt_int(static_cast<long long>(last.lock_failures)),
         TextTable::fmt_int(static_cast<long long>(last.tasks_spawned))});
}

void BM_Ordered(benchmark::State& state, bool ordered) {
  static Workload w = make_contended_workload();
  des::SimInput input(w.netlist, w.stimulus);
  des::HjEngineConfig cfg;
  cfg.workers = worker_counts().back();
  cfg.ordered_locks = ordered;
  hj::Runtime rt(cfg.workers);
  cfg.runtime = &rt;
  for (auto _ : state) {
    des::SimResult r = des::run_hj(input, cfg);
    benchmark::DoNotOptimize(r.lock_failures);
    state.counters["lock_failures"] = static_cast<double>(r.lock_failures);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("locks/ordered", BM_Ordered, true)
      ->Iterations(1);
  benchmark::RegisterBenchmark("locks/unordered", BM_Ordered, false)
      ->Iterations(1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  Workload w = make_contended_workload();
  std::printf("\n=== Ablation: lock acquisition order (§4.3) on %s at %d "
              "workers ===\n",
              w.name.c_str(), hjdes::bench::worker_counts().back());
  TextTable t;
  t.header({"configuration", "min ms", "avg ms", "lock failures",
            "tasks spawned"});
  run_case(t, "ordered, per-port locks", w, true, true);
  run_case(t, "unordered, per-port locks", w, false, true);
  run_case(t, "ordered, per-node locks", w, true, false);
  run_case(t, "unordered, per-node locks", w, false, false);
  std::printf("%s\n", t.render().c_str());
  return 0;
}
