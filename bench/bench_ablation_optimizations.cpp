// Ablation of the §4.5 optimizations — the breakdown the paper's §6 lists as
// "next step" future work ("break down and study the impact of the HJlib
// runtime and the optimizations introduced in Section 4.5"). Each row
// disables one optimization relative to the fully-optimized engine;
// `bare_alg2` is Algorithm 2 with none of them (per-node locks, per-node
// priority queues, unconditional re-spawns, unordered acquisition).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace hjdes;
using namespace hjdes::bench;

struct ConfigRow {
  const char* name;
  des::HjEngineConfig cfg;
};

std::vector<ConfigRow> config_rows(int workers) {
  auto base = [&](bool port, bool temp, bool avoid, bool ordered) {
    des::HjEngineConfig c;
    c.workers = workers;
    c.per_port_queues = port;
    c.temp_ready_queue = temp;
    c.avoid_redundant_async = avoid;
    c.ordered_locks = ordered;
    return c;
  };
  return {
      {"full-opt (paper)", base(true, true, true, true)},
      {"no temp queue", base(true, false, true, true)},
      {"no redundant-async avoidance", base(true, true, false, true)},
      {"no per-port queues (node PQ)", base(false, false, true, true)},
      {"bare Algorithm 2", base(false, false, false, false)},
  };
}

void print_ablation() {
  const int reps = repetitions();
  const int workers = worker_counts().back();
  Workload w = make_ks64_workload();
  des::SimInput input(w.netlist, w.stimulus);

  std::printf("\n=== Ablation: §4.5 optimizations on %s at %d workers "
              "(%d reps) ===\n",
              w.name.c_str(), workers, reps);
  TextTable t;
  t.header({"configuration", "min ms", "vs full-opt", "tasks spawned",
            "lock failures", "spawn skips"});
  double full_min = 0.0;
  for (ConfigRow& row : config_rows(workers)) {
    hj::Runtime rt(workers);
    row.cfg.runtime = &rt;
    des::SimResult last;
    Summary s = measure([&] { last = des::run_hj(input, row.cfg); }, reps);
    if (full_min == 0.0) full_min = s.min;
    t.row({row.name, TextTable::fmt(s.min * 1e3),
           TextTable::fmt(s.min / full_min, 2) + "x",
           TextTable::fmt_int(static_cast<long long>(last.tasks_spawned)),
           TextTable::fmt_int(static_cast<long long>(last.lock_failures)),
           TextTable::fmt_int(static_cast<long long>(last.spawn_skips))});
  }
  // Sequential anchors.
  Summary sd = measure([&] { des::run_sequential(input); }, reps);
  Summary sp = measure([&] { des::run_sequential_pq(input); }, reps);
  t.row({"sequential deque (ref)", TextTable::fmt(sd.min * 1e3),
         TextTable::fmt(sd.min / full_min, 2) + "x", "-", "-", "-"});
  t.row({"sequential PQ (ref)", TextTable::fmt(sp.min * 1e3),
         TextTable::fmt(sp.min / full_min, 2) + "x", "-", "-", "-"});
  std::printf("%s\n", t.render().c_str());
}

void BM_Config(benchmark::State& state, int config_index) {
  static Workload w = make_ks64_workload();
  des::SimInput input(w.netlist, w.stimulus);
  const int workers = worker_counts().back();
  auto rows = config_rows(workers);
  des::HjEngineConfig cfg = rows[static_cast<std::size_t>(config_index)].cfg;
  hj::Runtime rt(workers);
  cfg.runtime = &rt;
  for (auto _ : state) {
    des::SimResult r = des::run_hj(input, cfg);
    benchmark::DoNotOptimize(r.events_processed);
  }
  state.SetLabel(rows[static_cast<std::size_t>(config_index)].name);
}

}  // namespace

int main(int argc, char** argv) {
  const char* names[] = {"full_opt", "no_temp", "no_avoid_async", "node_pq",
                         "bare_alg2"};
  for (int i = 0; i < 5; ++i) {
    benchmark::RegisterBenchmark(
        (std::string("ablation/") + names[i]).c_str(), BM_Config, i)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_ablation();
  return 0;
}
