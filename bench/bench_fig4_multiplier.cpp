// Figure 4: performance for the 12-bit tree multiplier circuit —
// (a) minimum execution time vs workers, (b) speedup vs sequential Galois.
#include "figure_sweep.hpp"

int main(int argc, char** argv) {
  return hjdes::bench::figure_main(argc, argv, "Figure 4",
                                   &hjdes::bench::make_multiplier_workload);
}
