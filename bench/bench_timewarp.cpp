// Extension bench (paper §2.1 related work): conservative vs optimistic
// parallelization of the same workload. Compares the HJ engine
// (Chandy-Misra + NULL messages) against Time Warp (Jefferson rollback)
// and quantifies Time Warp's speculation overhead under increasing
// straggler pressure (batched / reversed injection).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace hjdes;
using namespace hjdes::bench;

// Time Warp gets right-sized workloads: uncontrolled optimism on deep
// circuits with thousands of queued events per port thrashes (each straggler
// rolls a long processed suffix back and the anti-message wave cascades down
// the whole fanout cone). That blow-up is itself a known property of
// unthrottled Time Warp — reported below — but the timing comparison uses
// inputs where both engine classes run in sane time.
std::vector<Workload> tw_workloads() {
  std::vector<Workload> ws;
  {
    Workload w;
    w.name = "multiplier-6bit";
    w.netlist = circuit::tree_multiplier(6);
    w.stimulus = circuit::random_stimulus(w.netlist, 2, 1000, 0xA11CE);
    ws.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "kogge-stone-16bit";
    w.netlist = circuit::kogge_stone_adder(16);
    w.stimulus = circuit::random_stimulus(w.netlist, 30, 100, 0xB0B);
    ws.push_back(std::move(w));
  }
  return ws;
}

void print_comparison() {
  const int reps = repetitions();
  const int workers = worker_counts().back();
  std::printf("\n=== Conservative vs optimistic at %d workers (%d reps) ===\n",
              workers, reps);
  TextTable t;
  t.header({"circuit", "engine", "min ms", "committed events",
            "speculative events", "rollbacks", "anti-messages"});
  for (Workload& w : tw_workloads()) {
    des::SimInput input(w.netlist, w.stimulus);

    hj::Runtime rt(workers);
    des::HjEngineConfig hj_cfg;
    hj_cfg.workers = workers;
    hj_cfg.runtime = &rt;
    des::SimResult hj_last;
    Summary hj = measure([&] { hj_last = des::run_hj(input, hj_cfg); }, reps);
    t.row({w.name, "hj (conservative)", TextTable::fmt(hj.min * 1e3),
           TextTable::fmt_int(static_cast<long long>(hj_last.events_processed)),
           "-", "-", "-"});

    des::TimeWarpConfig tw_cfg;
    tw_cfg.workers = workers;
    des::SimResult tw_last;
    Summary tw =
        measure([&] { tw_last = des::run_timewarp(input, tw_cfg); }, reps);
    t.row({w.name, "time warp (optimistic)", TextTable::fmt(tw.min * 1e3),
           TextTable::fmt_int(static_cast<long long>(tw_last.events_processed)),
           TextTable::fmt_int(
               static_cast<long long>(tw_last.speculative_events)),
           TextTable::fmt_int(static_cast<long long>(tw_last.rollbacks)),
           TextTable::fmt_int(static_cast<long long>(tw_last.anti_messages))});
  }
  std::printf("%s", t.render().c_str());

  // Straggler-pressure sweep: adversarial injection modes on one circuit.
  Workload w = tw_workloads()[1];
  des::SimInput input(w.netlist, w.stimulus);
  std::printf("\n--- Time Warp under straggler pressure (%s) ---\n",
              w.name.c_str());
  TextTable p;
  p.header({"injection", "min ms", "speculative/committed", "rollbacks"});
  struct Mode {
    const char* name;
    std::size_t batch;
    bool reverse;
  };
  for (const Mode& m : {Mode{"all-at-once (benign)", 0, false},
                        Mode{"batch=16", 16, false},
                        Mode{"batch=16 reversed (adversarial)", 16, true}}) {
    des::TimeWarpConfig cfg;
    cfg.workers = workers;
    cfg.input_batch = m.batch;
    cfg.reverse_injection = m.reverse;
    des::SimResult last;
    Summary s = measure([&] { last = des::run_timewarp(input, cfg); }, reps);
    p.row({m.name, TextTable::fmt(s.min * 1e3),
           TextTable::fmt(static_cast<double>(last.speculative_events) /
                              static_cast<double>(last.events_processed),
                          2),
           TextTable::fmt_int(static_cast<long long>(last.rollbacks))});
  }
  std::printf("%s\n", p.render().c_str());
}

void BM_TimeWarp(benchmark::State& state) {
  static std::vector<Workload> ws = tw_workloads();
  Workload& w = ws[1];
  des::SimInput input(w.netlist, w.stimulus);
  des::TimeWarpConfig cfg;
  cfg.workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    des::SimResult r = des::run_timewarp(input, cfg);
    benchmark::DoNotOptimize(r.events_processed);
    state.counters["rollbacks"] = static_cast<double>(r.rollbacks);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int workers : hjdes::bench::worker_counts()) {
    benchmark::RegisterBenchmark("timewarp/ks16", BM_TimeWarp)
        ->Arg(workers)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_comparison();
  return 0;
}
