// Extension bench (paper §6): the conservative null-message engine on
// network workloads — null-message overhead ratio and worker scaling, the
// quantities the PDES literature tracks for CMB.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "netsim/netsim.hpp"

namespace {

using namespace hjdes;
using namespace hjdes::bench;
namespace ns = hjdes::netsim;

struct NetWorkload {
  std::string name;
  ns::Topology topo;
  ns::Traffic traffic;
  ns::Time end_time;
};

/// Tight horizon: just past the last packet delivery. Simulating an empty
/// virtual-time tail only generates null-message chatter (the watermarks
/// must still climb to end_time in lookahead-sized steps).
void fit_end_time(NetWorkload& w) {
  ns::NetSimResult probe =
      ns::run_global_list(w.topo, w.traffic, 100'000'000);
  ns::Time last = 0;
  for (const ns::PacketRecord& p : probe.packets) {
    last = std::max(last, p.delivered);
  }
  w.end_time = last + 1;
}

std::vector<NetWorkload> net_workloads() {
  std::vector<NetWorkload> out;
  {
    NetWorkload w;
    w.name = "torus-6x6";
    w.topo = ns::torus_topology(6, 2, 3);
    w.traffic = ns::random_traffic(w.topo, 20000, 20000, 11);
    out.push_back(std::move(w));
  }
  {
    NetWorkload w;
    w.name = "random-40";
    w.topo = ns::random_topology(40, 80, 3, 4, 23);
    w.traffic = ns::random_traffic(w.topo, 20000, 20000, 13);
    out.push_back(std::move(w));
  }
  {
    NetWorkload w;
    w.name = "star-hotspot-24";
    w.topo = ns::star_topology(24, 2, 2);
    w.traffic = ns::hotspot_traffic(w.topo, 0, 400, 3);
    out.push_back(std::move(w));
  }
  for (NetWorkload& w : out) fit_end_time(w);
  return out;
}

void print_tables() {
  const int reps = repetitions();
  std::printf("\n=== netsim: global event list vs CMB null-message engine "
              "(%d reps) ===\n",
              reps);
  TextTable t;
  t.header({"workload", "engine", "min ms", "events", "nulls/event",
            "delivered"});
  // Dispatch through the netsim registry (netsim/engines.hpp): the first
  // entry is the sequential reference, every workers-honoring entry gets a
  // scaling sweep cross-checked against it.
  const ns::NetEngineInfo& reference = ns::engines().front();
  for (NetWorkload& w : net_workloads()) {
    ns::NetSimResult ref;
    Summary sg = measure(
        [&] {
          ref = reference.run(w.topo, w.traffic, w.end_time,
                              ns::NetEngineConfig{});
        },
        reps);
    t.row({w.name, std::string(reference.name), TextTable::fmt(sg.min * 1e3),
           TextTable::fmt_int(static_cast<long long>(ref.events_processed)),
           "-",
           TextTable::fmt_int(static_cast<long long>(ref.delivered_count()))});
    for (const ns::NetEngineInfo& eng : ns::engines()) {
      if (!eng.honors_workers) continue;
      for (int workers : worker_counts()) {
        ns::NetSimResult r;
        Summary sc = measure(
            [&] {
              r = eng.run(w.topo, w.traffic, w.end_time,
                          ns::NetEngineConfig{.workers = workers});
            },
            reps);
        const bool ok = ns::same_behaviour(ref, r);
        t.row({w.name, std::string(eng.name) + " w=" +
                           std::to_string(workers) + (ok ? "" : " MISMATCH!"),
               TextTable::fmt(sc.min * 1e3),
               TextTable::fmt_int(static_cast<long long>(r.events_processed)),
               TextTable::fmt(static_cast<double>(r.null_messages) /
                                  static_cast<double>(r.events_processed
                                                          ? r.events_processed
                                                          : 1),
                              2),
               TextTable::fmt_int(
                   static_cast<long long>(r.delivered_count()))});
      }
    }
  }
  std::printf("%s\n", t.render().c_str());
}

void BM_Cmb(benchmark::State& state) {
  static std::vector<NetWorkload> ws = net_workloads();
  NetWorkload& w = ws[0];
  ns::CmbConfig cfg;
  cfg.workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ns::NetSimResult r = ns::run_cmb(w.topo, w.traffic, w.end_time, cfg);
    benchmark::DoNotOptimize(r.events_processed);
    state.counters["null_ratio"] =
        static_cast<double>(r.null_messages) /
        static_cast<double>(r.events_processed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  hjdes::bench::ScopedTrace trace("netsim_cmb");
  for (int workers : hjdes::bench::worker_counts()) {
    benchmark::RegisterBenchmark("netsim/cmb_torus", BM_Cmb)
        ->Arg(workers)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_tables();
  return 0;
}
