// Microbenchmarks of the hj runtime primitives: the per-task cost the paper
// credits for HJlib's advantage ("the runtime overhead of task management
// inside HJlib is lower than that in the Galois system"), plus the §4.5.2
// claim that CAS/AtomicBoolean locks are cheaper than heavier mutexes.
#include <benchmark/benchmark.h>

#include <atomic>
#include <mutex>

#include "galois/context.hpp"
#include "galois/for_each.hpp"
#include "hj/chase_lev_deque.hpp"
#include "hj/isolated.hpp"
#include "hj/locks.hpp"
#include "hj/runtime.hpp"

namespace {

using namespace hjdes;

void BM_AsyncFinishPerTask(benchmark::State& state) {
  hj::Runtime rt(static_cast<int>(state.range(0)));
  constexpr int kTasks = 10000;
  for (auto _ : state) {
    std::atomic<int> sink{0};
    rt.run([&sink] {
      for (int i = 0; i < kTasks; ++i) {
        hj::async([&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
      }
    });
    benchmark::DoNotOptimize(sink.load());
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_AsyncFinishPerTask)->Arg(1)->Arg(2)->Arg(4);

void BM_GaloisForEachPerItem(benchmark::State& state) {
  constexpr int kItems = 10000;
  std::vector<int> initial(kItems, 1);
  for (auto _ : state) {
    std::atomic<int> sink{0};
    galois::for_each<int>(
        initial,
        [&sink](int, galois::UserContext<int>&) {
          sink.fetch_add(1, std::memory_order_relaxed);
        },
        galois::ForEachConfig{.threads = static_cast<int>(state.range(0))});
    benchmark::DoNotOptimize(sink.load());
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}
BENCHMARK(BM_GaloisForEachPerItem)->Arg(1)->Arg(2)->Arg(4);

void BM_ChaseLevPushPop(benchmark::State& state) {
  hj::ChaseLevDeque<int> deque;
  int item = 0;
  for (auto _ : state) {
    deque.push(&item);
    benchmark::DoNotOptimize(deque.pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChaseLevPushPop);

void BM_TryLockReleaseAll(benchmark::State& state) {
  hj::HjLock lock;
  for (auto _ : state) {
    bool ok = hj::try_lock(lock);
    benchmark::DoNotOptimize(ok);
    hj::release_all_locks();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TryLockReleaseAll);

void BM_StdMutexLockUnlock(benchmark::State& state) {
  std::mutex mu;
  for (auto _ : state) {
    mu.lock();
    benchmark::ClobberMemory();
    mu.unlock();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdMutexLockUnlock);

void BM_TryLockBatchOf4(benchmark::State& state) {
  // The engine's hot pattern: lock self + neighbors, then release all.
  hj::HjLock locks[4];
  for (auto _ : state) {
    for (auto& l : locks) {
      bool ok = hj::try_lock(l);
      benchmark::DoNotOptimize(ok);
    }
    hj::release_all_locks();
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_TryLockBatchOf4);

void BM_IsolatedGlobal(benchmark::State& state) {
  long counter = 0;
  for (auto _ : state) {
    hj::isolated([&counter] { ++counter; });
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_IsolatedGlobal);

void BM_IsolatedObject(benchmark::State& state) {
  long counter = 0;
  for (auto _ : state) {
    hj::isolated_on([&counter] { ++counter; }, &counter);
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_IsolatedObject);

void BM_GaloisAcquireCommit(benchmark::State& state) {
  galois::Lockable obj;
  galois::Context ctx;
  for (auto _ : state) {
    ctx.acquire(obj);
    ctx.commit();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaloisAcquireCommit);

void BM_GaloisUndoLogAppend(benchmark::State& state) {
  galois::Context ctx;
  long value = 0;
  for (auto _ : state) {
    for (int i = 0; i < 8; ++i) {
      ctx.add_undo([&value] { --value; });
      ++value;
    }
    ctx.commit();
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_GaloisUndoLogAppend);

}  // namespace

BENCHMARK_MAIN();
