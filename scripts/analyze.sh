#!/usr/bin/env bash
# Run the full hjdes static + dynamic analysis gate locally — the same steps
# as the CI `check` job (see .github/workflows/ci.yml and docs/ANALYSIS.md).
#
#   scripts/analyze.sh [build-dir]
#
# Steps:
#   1. configure/build [build-dir] (default build-check) with -DHJDES_CHECK=ON
#      and an exported compile database
#   2. concurrency lint        (scripts/lint_concurrency.py)
#   3. clang-tidy curated gate (scripts/run_clang_tidy.py; skips without the
#      tool — CI passes --require)
#   4. hjcheck-instrumented test suite (ctest labels check/hj/des/galois/part)
#   5. --check smoke run of hjdes_sim on a paper circuit, asserting zero
#      violations in the exported metrics JSON
#   6. hjverify schedule-exploration smoke (hjdes_explore): seeded schedules
#      on a paper circuit with the invariant oracles armed, every run held
#      bit-identical to sequential
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-check}"
case "$build" in /*) ;; *) build="$repo/$build" ;; esac

echo "==> [1/6] configure + build ($build, HJDES_CHECK=ON)"
cmake -B "$build" -S "$repo" \
  -DHJDES_CHECK=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DHJDES_BUILD_BENCH=OFF -DHJDES_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$build" -j >/dev/null

echo "==> [2/6] concurrency lint"
python3 "$repo/scripts/lint_concurrency.py"

echo "==> [3/6] clang-tidy curated gate"
# TIDY_FLAGS is word-split on purpose (e.g. TIDY_FLAGS=--require in CI).
# shellcheck disable=SC2086
python3 "$repo/scripts/run_clang_tidy.py" --build-dir "$build" ${TIDY_FLAGS:-}

echo "==> [4/6] hjcheck-instrumented tests"
ctest --test-dir "$build" -L 'check|hj|des|galois|part' \
  --output-on-failure -j "$(nproc)"

echo "==> [5/6] --check smoke run (hj engine, ks64)"
metrics="$(mktemp)"
trap 'rm -f "$metrics"' EXIT
"$build/tools/hjdes_sim" --circuit gen:ks64 --engine hj --workers 4 \
  --verify --check --metrics-json "$metrics"
python3 - "$metrics" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
c = m["counters"]
for key in ("check.races", "check.lock_order_violations", "check.lock_leaks",
            "check.invariants"):
    assert c.get(key, 0) == 0, f"{key} = {c.get(key)} on a clean engine run"
print("metrics: check.* counters all zero")
EOF

echo "==> [6/6] schedule-exploration smoke (mul12, 16 schedules/combination)"
"$build/tools/hjdes_explore" --circuits mul12 --schedules 16 \
  --explore-trace "$repo/hjdes-schedule.trace"

echo "analyze.sh: all gates passed"
