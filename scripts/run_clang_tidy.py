#!/usr/bin/env python3
"""Run the repo's curated .clang-tidy gate and diff against the baseline.

    scripts/run_clang_tidy.py [--build-dir BUILD] [--require]
                              [--update-baseline] [--jobs N]

Needs a build tree configured with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON.
When no clang-tidy binary is on PATH the script SKIPS with exit 0 (the
container used for local development does not ship clang-tidy); pass
--require — CI does — to turn a missing tool into an error.

Findings are normalized to "path: [check] message" (no line/column, so the
baseline survives unrelated edits) and compared against
scripts/clang_tidy_baseline.txt:

  * a finding not in the baseline      -> NEW, fails the gate
  * a baseline entry with no finding   -> stale, also fails the gate: a
    fixed finding must leave the baseline (--update-baseline) in the same
    commit, or the baseline rots into a list nobody can trust

--update-baseline rewrites the baseline to exactly the current findings;
commit the diff together with a justification for any added entry.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import pathlib
import re
import shutil
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "scripts" / "clang_tidy_baseline.txt"
TIDY_CANDIDATES = ["clang-tidy", "clang-tidy-20", "clang-tidy-19",
                   "clang-tidy-18", "clang-tidy-17"]
DIAG_RE = re.compile(
    r"^(?P<path>[^:\n]+):\d+:\d+: (?:warning|error): "
    r"(?P<msg>.*?) \[(?P<check>[\w.,-]+)\]$")


def find_tidy() -> str | None:
    for name in TIDY_CANDIDATES:
        if shutil.which(name):
            return name
    return None


def normalize(path: str, check: str, msg: str) -> str:
    p = pathlib.Path(path)
    try:
        p = p.resolve().relative_to(REPO)
    except ValueError:
        pass
    return f"{p.as_posix()}: [{check}] {msg}"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default=None,
                    help="build tree with compile_commands.json "
                         "(default: build-check, then build)")
    ap.add_argument("--require", action="store_true",
                    help="fail instead of skipping when clang-tidy is absent")
    ap.add_argument("--update-baseline", action="store_true")
    ap.add_argument("--jobs", type=int,
                    default=max(1, multiprocessing.cpu_count() - 1))
    args = ap.parse_args()

    tidy = find_tidy()
    if tidy is None:
        msg = "run_clang_tidy: no clang-tidy on PATH"
        if args.require:
            print(f"{msg} (--require set)", file=sys.stderr)
            return 1
        print(f"{msg}; skipping (pass --require to make this an error)")
        return 0

    build_dir = None
    candidates = ([args.build_dir] if args.build_dir
                  else ["build-check", "build"])
    for cand in candidates:
        d = (REPO / cand) if not pathlib.Path(cand).is_absolute() \
            else pathlib.Path(cand)
        if (d / "compile_commands.json").exists():
            build_dir = d
            break
    if build_dir is None:
        print("run_clang_tidy: no compile_commands.json found; configure "
              "with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON", file=sys.stderr)
        return 1

    compile_db = json.loads((build_dir / "compile_commands.json").read_text())
    sources = sorted(
        e["file"] for e in compile_db
        if "/src/" in e["file"].replace("\\", "/")
        and e["file"].endswith(".cpp"))
    if not sources:
        print("run_clang_tidy: no src/ sources in the compile database",
              file=sys.stderr)
        return 1

    print(f"run_clang_tidy: {tidy} over {len(sources)} sources "
          f"(db: {build_dir.name}, -j{args.jobs})")
    findings: set[str] = set()
    procs: list[tuple[str, subprocess.Popen]] = []

    def reap(block_all: bool) -> None:
        while procs and (block_all or len(procs) >= args.jobs):
            src, proc = procs.pop(0)
            out, _ = proc.communicate()
            for line in out.splitlines():
                m = DIAG_RE.match(line)
                if m:
                    findings.add(normalize(m.group("path"), m.group("check"),
                                           m.group("msg")))

    for src in sources:
        procs.append((src, subprocess.Popen(
            [tidy, "-p", str(build_dir), "--quiet", src],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)))
        reap(block_all=False)
    reap(block_all=True)

    baseline: set[str] = set()
    if BASELINE.exists():
        baseline = {ln.strip() for ln in BASELINE.read_text().splitlines()
                    if ln.strip() and not ln.lstrip().startswith("#")}

    if args.update_baseline:
        header = ("# clang-tidy baseline: known findings the gate tolerates.\n"
                  "# Regenerate with scripts/run_clang_tidy.py "
                  "--update-baseline; justify additions in the commit.\n")
        BASELINE.write_text(header + "".join(
            f"{f}\n" for f in sorted(findings)))
        print(f"run_clang_tidy: baseline updated ({len(findings)} entries)")
        return 0

    new = sorted(findings - baseline)
    stale = sorted(baseline - findings)
    for f in new:
        print(f"NEW: {f}")
    for f in stale:
        print(f"STALE baseline entry (fixed — remove it with "
              f"--update-baseline): {f}")
    print(f"run_clang_tidy: {len(findings)} finding(s), {len(new)} new, "
          f"{len(stale)} stale baseline entr(y|ies)")
    return 1 if new or stale else 0


if __name__ == "__main__":
    sys.exit(main())
