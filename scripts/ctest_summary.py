#!/usr/bin/env python3
"""Print a timing summary of the last ctest run in a build tree.

    scripts/ctest_summary.py [BUILD_DIR] [--top N]

Parses BUILD_DIR/Testing/Temporary/LastTest.log (the log ctest always writes,
default BUILD_DIR: build) and prints totals, the slowest individual tests,
and cumulative time per gtest suite — so a CI log answers "where did the
minutes go" without rerunning anything. Informational: exits 0 whether the
tests passed or failed (ctest itself already gated the job), and 1 only when
the log is missing, which means the step ran before ctest or in the wrong
directory.
"""

import argparse
import re
import sys
from collections import defaultdict
from pathlib import Path

# "3/655 Testing: RingDeque.StartsEmpty" opens a block;
# "Test time =   0.52 sec" and "Test Passed." / "...Failed." close it.
TESTING_RE = re.compile(r"^\d+/\d+ Testing: (.+)$")
TIME_RE = re.compile(r"^Test time =\s+([0-9.]+) sec$")
RESULT_RE = re.compile(r"^Test (Passed|Failed|Timeout)")


def parse(log_path):
    tests = []  # (name, seconds, status)
    name = None
    seconds = None
    for line in log_path.read_text(errors="replace").splitlines():
        m = TESTING_RE.match(line)
        if m:
            # gtest value-parameterized tests carry a "# GetParam() = ..."
            # suffix with unstable pointer values; drop it.
            name, seconds = m.group(1).split("  # GetParam()")[0], None
            continue
        m = TIME_RE.match(line)
        if m and name is not None:
            seconds = float(m.group(1))
            continue
        m = RESULT_RE.match(line)
        if m and name is not None:
            tests.append((name, seconds if seconds is not None else 0.0,
                          m.group(1)))
            name = None
    return tests


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("build_dir", nargs="?", default="build")
    ap.add_argument("--top", type=int, default=15,
                    help="how many slowest tests/suites to list")
    args = ap.parse_args()

    log_path = Path(args.build_dir) / "Testing" / "Temporary" / "LastTest.log"
    if not log_path.is_file():
        print(f"ctest_summary: {log_path} not found (run ctest first)")
        return 1
    tests = parse(log_path)
    if not tests:
        print(f"ctest_summary: no test records in {log_path}")
        return 1

    total = sum(t[1] for t in tests)
    failed = [t for t in tests if t[2] != "Passed"]
    print(f"ctest_summary: {len(tests)} tests, {total:.1f}s cumulative, "
          f"{len(failed)} not passed")

    print(f"\nslowest {min(args.top, len(tests))} tests:")
    for name, secs, status in sorted(tests, key=lambda t: -t[1])[:args.top]:
        flag = "" if status == "Passed" else f"  [{status}]"
        print(f"  {secs:8.2f}s  {name}{flag}")

    suites = defaultdict(lambda: [0.0, 0])
    for name, secs, _ in tests:
        suite = name.split(".")[0].split("/")[0]
        suites[suite][0] += secs
        suites[suite][1] += 1
    ranked = sorted(suites.items(), key=lambda kv: -kv[1][0])
    print(f"\nslowest {min(args.top, len(ranked))} suites:")
    for suite, (secs, count) in ranked[:args.top]:
        print(f"  {secs:8.2f}s  {suite} ({count} tests)")

    if failed:
        print(f"\nnot passed:")
        for name, secs, status in failed:
            print(f"  {status}: {name} ({secs:.2f}s)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # piped into head; not an error
        sys.exit(0)
