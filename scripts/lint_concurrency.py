#!/usr/bin/env python3
"""Concurrency lint for the hjdes sources (see docs/ANALYSIS.md).

Rules, all scoped to src/:

  atomic-implicit-order   Every std::atomic member-function access
                          (.load/.store/.exchange/.fetch_*/.compare_exchange_*)
                          must spell out its std::memory_order argument.
                          Explicit seq_cst is fine (the paper's §4.5.3 Dekker
                          hints need it); *implicit* seq_cst is what hides
                          unconsidered orderings. File-local aliases
                          (`constexpr auto kSC = std::memory_order_seq_cst;`)
                          count as explicit.

  atomic-bare-operator    No operator access to atomics (x++, x += n, x = v):
                          these compile to seq_cst RMW/stores with nothing in
                          the source saying so. Use the named functions.

  no-mutex-hot-path       No std::mutex / std::shared_mutex /
                          std::condition_variable in src/hj, src/des,
                          src/part, src/serve or src/fault — the runtime's
                          lock-free guarantees are the point of the
                          reproduction, and the engine-adjacent layers must
                          justify every blocking primitive they keep.
                          isolated.{hpp,cpp} are exempt
                          (HJlib `isolated` is specified as a striped-lock
                          global section); anything else needs an allowlist
                          entry justifying itself.

Escapes live in scripts/concurrency_allowlist.txt, one per line:

    rule|path-substring|line-regex   # comment

A finding is suppressed when the rule matches, the path contains the
substring, and the regex searches true against the offending line. Run with
--list-allowlisted to see which entries fired (stale entries are reported as
errors so the allowlist cannot rot).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

ATOMIC_METHODS = (
    "load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor"
    "|compare_exchange_weak|compare_exchange_strong"
)
ATOMIC_CALL_RE = re.compile(r"\.\s*(" + ATOMIC_METHODS + r")\s*\(")
ALIAS_RE = re.compile(
    r"(?:constexpr\s+)?(?:auto|std::memory_order)\s+(\w+)\s*=\s*"
    r"std::memory_order_\w+"
)
ATOMIC_DECL_RE = re.compile(r"std::atomic\s*<[^;(){}]*>\s+(\w+)")
MUTEX_RE = re.compile(r"std::(?:mutex|recursive_mutex|timed_mutex|"
                      r"shared_mutex|condition_variable(?:_any)?)\b")

MUTEX_SCOPE = ("src/hj/", "src/des/", "src/part/", "src/serve/", "src/fault/")
MUTEX_EXEMPT = ("src/hj/isolated.hpp", "src/hj/isolated.cpp")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def balanced_args(text: str, open_paren: int) -> str:
    """Return the argument text of the call whose '(' is at open_paren."""
    depth, i = 0, open_paren
    while i < len(text):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:i]
        i += 1
    return text[open_paren + 1:]


class Finding:
    def __init__(self, rule: str, path: str, line: int, snippet: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.snippet = snippet.strip()

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.snippet}"


def lint_file(path: pathlib.Path, rel: str) -> list[Finding]:
    raw = path.read_text(encoding="utf-8")
    text = strip_comments_and_strings(raw)
    lines = text.split("\n")
    findings: list[Finding] = []

    aliases = {m.group(1) for m in ALIAS_RE.finditer(text)}
    alias_re = re.compile(
        r"\b(?:" + "|".join(re.escape(w) for w in sorted(aliases)) + r")\b"
    ) if aliases else None

    # Rule: atomic-implicit-order.
    for m in ATOMIC_CALL_RE.finditer(text):
        args = balanced_args(text, m.end() - 1)
        if "memory_order" not in args and not (
                alias_re and alias_re.search(args)):
            line = text.count("\n", 0, m.start()) + 1
            findings.append(Finding("atomic-implicit-order", rel, line,
                                    lines[line - 1]))

    # Rule: atomic-bare-operator.
    atomic_names = {m.group(1) for m in ATOMIC_DECL_RE.finditer(text)}
    # Drop names the file also declares as a plain variable (e.g. a local
    # `std::uint64_t sum` beside an atomic member `sum`): without scope
    # analysis those would be guaranteed false positives.
    for name in sorted(atomic_names):
        decl_re = re.compile(r"[\w>&\]]\s+" + re.escape(name) + r"\s*[=;{]")
        if any(decl_re.search(ln) and "atomic" not in ln for ln in lines):
            atomic_names.discard(name)
    if atomic_names:
        names = "|".join(re.escape(x) for x in sorted(atomic_names))
        op_res = [
            re.compile(r"\b(" + names + r")(?:\[[^\]]*\])?\s*"
                       r"(\+\+|--|[-+|&^]=)"),
            re.compile(r"(\+\+|--)\s*(" + names + r")\b"),
            re.compile(r"\b(" + names + r")(?:\[[^\]]*\])?\s*=(?![=])"),
        ]
        for lineno, line in enumerate(lines, 1):
            if ATOMIC_DECL_RE.search(line):
                continue  # declarations with initializers are construction
            for op_re in op_res:
                if op_re.search(line):
                    findings.append(Finding("atomic-bare-operator", rel,
                                            lineno, line))
                    break

    # Rule: no-mutex-hot-path.
    if rel.startswith(MUTEX_SCOPE) and rel not in MUTEX_EXEMPT:
        for lineno, line in enumerate(lines, 1):
            if MUTEX_RE.search(line):
                findings.append(Finding("no-mutex-hot-path", rel, lineno,
                                        line))

    return findings


def load_allowlist(path: pathlib.Path):
    entries = []
    if not path.exists():
        return entries
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split("|", 2)
        if len(parts) != 3:
            sys.exit(f"{path}:{lineno}: allowlist line needs "
                     "rule|path-substring|line-regex")
        entries.append({"rule": parts[0], "path": parts[1],
                        "regex": re.compile(parts[2]), "hits": 0,
                        "where": f"{path.name}:{lineno}"})
    return entries


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=str(REPO), help="repository root")
    ap.add_argument("--allowlist",
                    default=str(REPO / "scripts" / "concurrency_allowlist.txt"))
    ap.add_argument("--list-allowlisted", action="store_true",
                    help="print suppressed findings too")
    args = ap.parse_args()

    root = pathlib.Path(args.root)
    allowlist = load_allowlist(pathlib.Path(args.allowlist))

    findings: list[Finding] = []
    suppressed: list[tuple[Finding, str]] = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        rel = path.relative_to(root).as_posix()
        for f in lint_file(path, rel):
            for entry in allowlist:
                if (entry["rule"] == f.rule and entry["path"] in f.path
                        and entry["regex"].search(f.snippet)):
                    entry["hits"] += 1
                    suppressed.append((f, entry["where"]))
                    break
            else:
                findings.append(f)

    if args.list_allowlisted:
        for f, where in suppressed:
            print(f"allowlisted ({where}): {f}")

    stale = [e for e in allowlist if e["hits"] == 0]
    for e in stale:
        print(f"error: stale allowlist entry {e['where']}: "
              f"{e['rule']}|{e['path']}|{e['regex'].pattern}")

    for f in findings:
        print(f)
    total = len(findings) + len(stale)
    print(f"lint_concurrency: {len(findings)} finding(s), "
          f"{len(suppressed)} allowlisted, {len(stale)} stale entr(y|ies)")
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
