#!/usr/bin/env bash
# Full reproduction driver: build, test, regenerate every table/figure.
#
#   scripts/reproduce.sh              # scaled workloads (minutes)
#   scripts/reproduce.sh --paper      # paper-sized workloads (hours on a laptop)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--paper" ]]; then
  export HJDES_PAPER_SCALE=1
  echo "== paper-scale mode: 56-140M-event simulations, 20 reps =="
fi

cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

echo "== benches (tables & figures) =="
for b in build/bench/*; do
  [[ -x "$b" && -f "$b" ]] || continue
  echo "===== $b"
  "$b"
done 2>&1 | tee bench_output.txt

echo "== done: see test_output.txt, bench_output.txt, EXPERIMENTS.md =="
