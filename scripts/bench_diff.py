#!/usr/bin/env python3
"""Diff two BENCH_core.json event-core trajectories and gate on regressions.

    scripts/bench_diff.py BASELINE CANDIDATE [--threshold PCT]
    scripts/bench_diff.py --self-test

BASELINE is the committed repo-root BENCH_core.json (the trajectory the PR
author measured); CANDIDATE is the file the bench-trajectory CI job just
produced with `bench_engines_overview` (HJDES_CORE_JSON). Both must carry
schema "hjdes-bench-core" version 1 (bench/bench_engines_overview.cpp writes
it; bump the version there and here together).

Cells are joined on (circuit, config) and compared by events_per_sec. The
committing machine and the CI runner differ in absolute speed, so raw ratios
are useless; instead every cell's ratio r = candidate/baseline is normalized
by the median ratio across all cells (the machine-speed factor), and the gate
trips when any cell falls more than --threshold percent below that median:

    r_i / median(r) < 1 - threshold/100   ->  regression, exit 1

A uniform slowdown (slower runner) moves the median, not the spread, and
passes; a single config losing ground against its siblings — the ladder
queue regressing while the heap holds, a packed path losing its word-level
parallelism — is exactly a spread change and fails. Cells present in the
baseline but missing from the candidate fail (a silently dropped config is
not a pass); cells only in the candidate are reported and pass (a new config
has no trajectory yet).

--self-test builds a synthetic baseline/candidate pair in memory, seeds one
cell with a >15% relative regression, and asserts the gate trips (and that
an identical pair passes). The CI job runs it before the real diff so a
broken gate fails loudly instead of waving regressions through.
"""

import argparse
import json
import sys

SCHEMA = "hjdes-bench-core"
VERSION = 1


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise SystemExit(f"{path}: schema {doc.get('schema')!r}, want {SCHEMA!r}")
    if doc.get("version") != VERSION:
        raise SystemExit(
            f"{path}: version {doc.get('version')!r}, want {VERSION} "
            "(regenerate the baseline or update bench_diff.py)"
        )
    cells = {}
    for i, cell in enumerate(doc.get("cells", [])):
        # Name the offending cell and field instead of dying with a bare
        # KeyError: a half-written candidate (crashed bench, truncated file)
        # should diagnose itself.
        for field in ("circuit", "config", "events_per_sec"):
            if field not in cell:
                raise SystemExit(
                    f"{path}: cell #{i} "
                    f"({cell.get('circuit', '?')}, {cell.get('config', '?')}) "
                    f"is missing field {field!r}"
                )
        key = (cell["circuit"], cell["config"])
        if key in cells:
            raise SystemExit(f"{path}: duplicate cell {key}")
        try:
            eps = float(cell["events_per_sec"])
        except (TypeError, ValueError):
            raise SystemExit(
                f"{path}: cell {key} has non-numeric events_per_sec "
                f"{cell['events_per_sec']!r}"
            )
        if eps <= 0:
            raise SystemExit(f"{path}: cell {key} has events_per_sec {eps}")
        cells[key] = eps
    if not cells:
        raise SystemExit(f"{path}: no cells")
    return cells


def median(values):
    s = sorted(values)
    mid = len(s) // 2
    return s[mid] if len(s) % 2 else (s[mid - 1] + s[mid]) / 2.0


# Configs whose absence from one side is a named diagnostic rather than a
# hard failure: the optimistic lp-tw-* trajectory is landing now, so a
# measurement taken by a bench binary predating it (bisect runs, stale
# artifacts) legitimately lacks those cells. Everything else missing from
# the candidate is still a silently-dropped config and fails.
DIAGNOSTIC_PREFIXES = ("lp-tw",)


def is_diagnostic_config(config):
    return config.startswith(DIAGNOSTIC_PREFIXES)


def diff(base, cand, threshold_pct):
    """Compare cell dicts; returns (failures, report_lines)."""
    failures = []
    lines = []
    missing = sorted(k for k in base if k not in cand)
    extra = sorted(k for k in cand if k not in base)
    for key in missing:
        if is_diagnostic_config(key[1]):
            lines.append(
                f"  diagnostic: cell {key} is in the baseline but not the "
                "candidate (lp-tw trajectory is new; not a failure)"
            )
        else:
            failures.append(
                f"cell {key} is in the baseline but not the candidate"
            )
    for key in extra:
        lines.append(f"  new cell {key}: no baseline, skipped")

    joined = sorted(k for k in base if k in cand)
    if not joined:
        failures.append("no cells in common between baseline and candidate")
        return failures, lines

    ratios = {k: cand[k] / base[k] for k in joined}
    scale = median(ratios.values())
    floor = 1.0 - threshold_pct / 100.0
    lines.append(f"  machine-speed scale (median ratio): {scale:.3f}")
    for key in joined:
        rel = ratios[key] / scale
        verdict = "ok"
        if rel < floor:
            verdict = "REGRESSION"
            failures.append(
                f"cell {key}: {rel:.3f}x relative to the median "
                f"(threshold {floor:.3f}x); "
                f"{base[key]:.0f} -> {cand[key]:.0f} events/sec"
            )
        lines.append(
            f"  {key[0]:<20} {key[1]:<16} {base[key] / 1e6:>9.2f} -> "
            f"{cand[key] / 1e6:>9.2f} Mev/s  rel {rel:.3f}  {verdict}"
        )
    return failures, lines


def self_test():
    circuits = ["multiplier-8bit", "kogge-stone-32bit"]
    configs = ["seq", "seq-heap", "seq-ladder", "seq-bp64", "seq-ladder-bp64"]
    base = {(ci, cf): 1e6 * (1 + i) for i, (ci, cf) in
            enumerate((ci, cf) for ci in circuits for cf in configs)}

    # A uniformly 2x-slower machine must pass at any threshold.
    slower = {k: v * 0.5 for k, v in base.items()}
    failures, _ = diff(base, slower, 15.0)
    assert not failures, f"uniform slowdown tripped the gate: {failures}"

    # One cell 20% below its siblings must trip a 15% gate.
    regressed = dict(slower)
    victim = (circuits[0], "seq-ladder")
    regressed[victim] *= 0.80
    failures, _ = diff(base, regressed, 15.0)
    assert failures, "seeded 20% regression did not trip the 15% gate"
    assert any("seq-ladder" in f for f in failures), failures

    # ... and must pass a 25% gate.
    failures, _ = diff(base, regressed, 25.0)
    assert not failures, f"20% regression tripped a 25% gate: {failures}"

    # A dropped cell is a failure, not a silent pass.
    dropped = {k: v for k, v in slower.items() if k != victim}
    failures, _ = diff(base, dropped, 15.0)
    assert any("not the candidate" in f for f in failures), failures

    # An added cell (new config with no trajectory yet — e.g. the serve
    # throughput cells landing for the first time) passes, is reported by
    # name, and stays out of the median normalization.
    added = dict(slower)
    added[(circuits[0], "serve-sched-packed")] = 123.0  # absurd on purpose
    failures, lines = diff(base, added, 15.0)
    assert not failures, f"added cell tripped the gate: {failures}"
    assert any("serve-sched-packed" in ln and "new cell" in ln
               for ln in lines), lines

    # Brand-new lp-tw-* cells in the baseline with no candidate measurement
    # (a bench binary predating the optimistic trajectory) are a named
    # diagnostic, not a hard failure — while a dropped conventional cell in
    # the same candidate still fails.
    tw_base = dict(base)
    tw_base[(circuits[0], "lp-tw4")] = 2e6
    failures, lines = diff(tw_base, slower, 15.0)
    assert not failures, f"missing lp-tw cell tripped the gate: {failures}"
    assert any("lp-tw4" in ln and "diagnostic" in ln for ln in lines), lines
    failures, lines = diff(tw_base, dropped, 15.0)
    assert any("not the candidate" in f for f in failures), failures
    assert any("lp-tw4" in ln and "diagnostic" in ln for ln in lines), lines

    print("bench_diff: self-test passed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?", help="committed BENCH_core.json")
    ap.add_argument("candidate", nargs="?", help="freshly measured JSON")
    ap.add_argument("--threshold", type=float, default=15.0,
                    help="max %% a cell may fall below the median ratio")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate trips on a seeded regression")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        ap.error("need BASELINE and CANDIDATE (or --self-test)")
    if not 0 < args.threshold < 100:
        ap.error("--threshold must be in (0, 100)")

    base = load(args.baseline)
    cand = load(args.candidate)
    failures, lines = diff(base, cand, args.threshold)
    print(f"bench_diff: {args.baseline} vs {args.candidate} "
          f"(threshold {args.threshold:.0f}%)")
    for line in lines:
        print(line)
    if failures:
        print(f"\nbench_diff: FAIL ({len(failures)} regression(s)):")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nbench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
